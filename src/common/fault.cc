#include "src/common/fault.h"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/common/logging.h"

namespace iawj::fault {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

struct Site {
  std::string name;
  uint64_t nth = 1;    // first firing hit (1-based)
  uint64_t count = 1;  // firing hits; 0 = every hit from nth on
  std::atomic<uint64_t> hits{0};
};

// Fixed-capacity table: Site holds an atomic, so the array is never resized
// while enabled. More sites than this in one spec is a configuration error.
constexpr size_t kMaxSites = 16;
std::array<Site, kMaxSites> g_sites;
std::atomic<size_t> g_num_sites{0};

bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

// Parses one "site[:nth[:count]]" element into *site.
Status ParseElement(std::string_view element, Site* site) {
  const size_t colon1 = element.find(':');
  site->name = std::string(element.substr(0, colon1));
  site->nth = 1;
  site->count = 1;
  site->hits.store(0, std::memory_order_relaxed);
  if (site->name.empty()) {
    return Status::InvalidArgument("IAWJ_FAULT: empty site name");
  }
  if (colon1 == std::string_view::npos) return Status::Ok();

  std::string_view rest = element.substr(colon1 + 1);
  const size_t colon2 = rest.find(':');
  const std::string_view nth_text = rest.substr(0, colon2);
  if (!ParseU64(nth_text, &site->nth) || site->nth == 0) {
    return Status::InvalidArgument("IAWJ_FAULT: bad nth in '" +
                                   std::string(element) +
                                   "' (want a positive integer)");
  }
  if (colon2 == std::string_view::npos) return Status::Ok();
  if (!ParseU64(rest.substr(colon2 + 1), &site->count)) {
    return Status::InvalidArgument("IAWJ_FAULT: bad count in '" +
                                   std::string(element) +
                                   "' (want an integer; 0 = forever)");
  }
  return Status::Ok();
}

// Parses $IAWJ_FAULT at process start; a malformed value is a user error
// worth failing loudly on — silently ignoring it would "pass" a test that
// believed faults were active. It is still a *user* error, so it gets a
// one-line diagnostic and a clean invalid_argument exit, not an abort.
// ReloadFromEnv() re-runs the same parse later without the exit, so one
// process can install successive schedules.
const bool g_env_init = [] {
  if (const Status status = ReloadFromEnv(); !status.ok()) {
    std::fprintf(stderr, "error [invalid_argument]: %s\n",
                 std::string(status.message()).c_str());
    std::exit(2);
  }
  return true;
}();

}  // namespace

namespace internal {

bool InjectSlow(std::string_view site) {
  const size_t n = g_num_sites.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    Site& s = g_sites[i];
    if (s.name != site) continue;
    const uint64_t hit =
        s.hits.fetch_add(1, std::memory_order_relaxed) + 1;  // 1-based
    if (hit < s.nth) return false;
    return s.count == 0 || hit < s.nth + s.count;
  }
  return false;
}

}  // namespace internal

Status Configure(std::string_view spec) {
  Clear();
  size_t n = 0;
  size_t begin = 0;
  while (begin <= spec.size() && !spec.empty()) {
    size_t end = spec.find(',', begin);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view element = spec.substr(begin, end - begin);
    if (!element.empty()) {
      if (n == kMaxSites) {
        return Status::InvalidArgument("IAWJ_FAULT: more than " +
                                       std::to_string(kMaxSites) + " sites");
      }
      if (const Status status = ParseElement(element, &g_sites[n]);
          !status.ok()) {
        return status;
      }
      ++n;
    }
    begin = end + 1;
  }
  g_num_sites.store(n, std::memory_order_release);
  internal::g_enabled.store(n > 0, std::memory_order_release);
  return Status::Ok();
}

void Reset() {
  for (Site& s : g_sites) s.hits.store(0, std::memory_order_relaxed);
}

Status ReloadFromEnv() {
  const char* spec = std::getenv("IAWJ_FAULT");
  if (spec == nullptr || spec[0] == '\0') {
    Clear();
    return Status::Ok();
  }
  return Configure(spec);
}

void Clear() {
  internal::g_enabled.store(false, std::memory_order_release);
  g_num_sites.store(0, std::memory_order_release);
  for (Site& s : g_sites) s.hits.store(0, std::memory_order_relaxed);
}

uint64_t Hits(std::string_view site) {
  const size_t n = g_num_sites.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    if (g_sites[i].name == site) {
      return g_sites[i].hits.load(std::memory_order_relaxed);
    }
  }
  return 0;
}

}  // namespace iawj::fault
