// Minimal command-line flag parsing for the CLI tools and benches.
//
// Supports --name=value and --name value forms plus boolean --name /
// --no-name. Unknown flags are reported; positional arguments are returned
// in order. No global registry — callers declare the flags they accept.
#ifndef IAWJ_COMMON_FLAGS_H_
#define IAWJ_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace iawj {

class FlagParser {
 public:
  // Parses argv; returns an error for malformed input. Flags may then be
  // queried; Unknown() lists flags the caller never consumed.
  Status Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& default_value);
  int64_t GetInt(const std::string& name, int64_t default_value);
  double GetDouble(const std::string& name, double default_value);
  bool GetBool(const std::string& name, bool default_value);

  const std::vector<std::string>& positional() const { return positional_; }

  // Flags present on the command line that were never queried.
  std::vector<std::string> Unknown() const;

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> consumed_;
  std::vector<std::string> positional_;
};

}  // namespace iawj

#endif  // IAWJ_COMMON_FLAGS_H_
