// Minimal logging and invariant-checking macros.
//
// The library does not use exceptions (per the project style); programmer
// errors and violated invariants terminate the process through CHECK. The
// D-prefixed variants compile away in release builds (NDEBUG).
#ifndef IAWJ_COMMON_LOGGING_H_
#define IAWJ_COMMON_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace iawj {

enum class LogSeverity { kInfo, kWarning, kError, kFatal };

namespace internal_logging {

// Accumulates one log line and emits it (to stderr) on destruction.
// A kFatal message aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when a check passes.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define IAWJ_LOG(severity)                                               \
  ::iawj::internal_logging::LogMessage(::iawj::LogSeverity::k##severity, \
                                       __FILE__, __LINE__)

// The while-loop body runs at most once: a kFatal LogMessage aborts in its
// destructor. The form keeps CHECKs streamable: IAWJ_CHECK(ok) << "detail".
#define IAWJ_CHECK(cond)                                                   \
  while (!(cond))                                                          \
  ::iawj::internal_logging::LogMessage(::iawj::LogSeverity::kFatal,        \
                                       __FILE__, __LINE__)                 \
      << "Check failed: " #cond " "

#define IAWJ_CHECK_OP(op, a, b)                                            \
  while (!((a)op(b)))                                                      \
  ::iawj::internal_logging::LogMessage(::iawj::LogSeverity::kFatal,        \
                                       __FILE__, __LINE__)                 \
      << "Check failed: " #a " " #op " " #b " (" << (a) << " vs " << (b)   \
      << ") "

#define IAWJ_CHECK_EQ(a, b) IAWJ_CHECK_OP(==, a, b)
#define IAWJ_CHECK_NE(a, b) IAWJ_CHECK_OP(!=, a, b)
#define IAWJ_CHECK_LT(a, b) IAWJ_CHECK_OP(<, a, b)
#define IAWJ_CHECK_LE(a, b) IAWJ_CHECK_OP(<=, a, b)
#define IAWJ_CHECK_GT(a, b) IAWJ_CHECK_OP(>, a, b)
#define IAWJ_CHECK_GE(a, b) IAWJ_CHECK_OP(>=, a, b)

#ifdef NDEBUG
#define IAWJ_DCHECK(cond) \
  while (false) ::iawj::internal_logging::NullStream() << !(cond)
#define IAWJ_DCHECK_LT(a, b) IAWJ_DCHECK((a) < (b))
#define IAWJ_DCHECK_LE(a, b) IAWJ_DCHECK((a) <= (b))
#define IAWJ_DCHECK_EQ(a, b) IAWJ_DCHECK((a) == (b))
#else
#define IAWJ_DCHECK(cond) IAWJ_CHECK(cond)
#define IAWJ_DCHECK_LT(a, b) IAWJ_CHECK_LT(a, b)
#define IAWJ_DCHECK_LE(a, b) IAWJ_CHECK_LE(a, b)
#define IAWJ_DCHECK_EQ(a, b) IAWJ_CHECK_EQ(a, b)
#endif

}  // namespace iawj

#endif  // IAWJ_COMMON_LOGGING_H_
