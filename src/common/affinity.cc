#include "src/common/affinity.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace iawj {

std::vector<int> ParseCpuList(const char* text, int num_cores) {
  std::vector<int> cores;
  if (text == nullptr) return cores;
  const char* p = text;
  while (*p != '\0' && *p != '\n') {
    char* end = nullptr;
    const long lo = std::strtol(p, &end, 10);
    if (end == p || lo < 0) return {};
    long hi = lo;
    p = end;
    if (*p == '-') {
      ++p;
      hi = std::strtol(p, &end, 10);
      if (end == p || hi < lo) return {};
      p = end;
    }
    for (long c = lo; c <= hi; ++c) {
      if (c < num_cores) cores.push_back(static_cast<int>(c));
    }
    if (*p == ',') ++p;
  }
  return cores;
}

namespace {

CpuTopology SingleNode(int num_cores) {
  CpuTopology topo;
  topo.num_cores = num_cores;
  topo.num_nodes = 1;
  topo.node_of_core.assign(static_cast<size_t>(num_cores), 0);
  return topo;
}

}  // namespace

CpuTopology DetectTopology() {
  long cores = sysconf(_SC_NPROCESSORS_ONLN);
  if (cores < 1) cores = 1;
  const int num_cores = static_cast<int>(cores);

  // Synthetic override: n contiguous-core nodes, for exercising the
  // remote-steal policy on single-node hosts.
  if (const char* env = std::getenv("IAWJ_NUMA_NODES");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && n >= 1) {
      CpuTopology topo;
      topo.num_cores = num_cores;
      topo.num_nodes = static_cast<int>(n < num_cores ? n : num_cores);
      topo.node_of_core.resize(static_cast<size_t>(num_cores));
      for (int c = 0; c < num_cores; ++c) {
        topo.node_of_core[static_cast<size_t>(c)] =
            static_cast<int>(static_cast<long>(c) * topo.num_nodes /
                             num_cores);
      }
      return topo;
    }
  }

  CpuTopology topo;
  topo.num_cores = num_cores;
  topo.num_nodes = 0;
  topo.node_of_core.assign(static_cast<size_t>(num_cores), -1);
  for (int node = 0; node < 1024; ++node) {
    const std::string path = "/sys/devices/system/node/node" +
                             std::to_string(node) + "/cpulist";
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) break;
    char buf[4096];
    const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    buf[n] = '\0';
    for (int core : ParseCpuList(buf, num_cores)) {
      topo.node_of_core[static_cast<size_t>(core)] = node;
    }
    topo.num_nodes = node + 1;
  }
  if (topo.num_nodes < 1) return SingleNode(num_cores);
  // Offline gaps in the sysfs listing: fold unmapped cores into node 0 so
  // every core is placed.
  for (int& node : topo.node_of_core) {
    if (node < 0) node = 0;
  }
  return topo;
}

}  // namespace iawj
