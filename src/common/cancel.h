// Shared cancellation token for one join run (ISSUE 2).
//
// The runner owns one token per run and hands it to every participant: the
// deadline watchdog and the memory tracker's budget enforcement cancel it,
// worker threads observe it at phase boundaries and unwind, and the run's
// RunResult carries the cancellation reason as its Status. The observe path
// is a single relaxed atomic load, so checkpoints are safe to sprinkle
// through tuple loops.
#ifndef IAWJ_COMMON_CANCEL_H_
#define IAWJ_COMMON_CANCEL_H_

#include <atomic>
#include <mutex>
#include <utility>

#include "src/common/status.h"

namespace iawj {

class CancelToken {
 public:
  // Requests cancellation; the first caller's reason wins, later calls are
  // ignored (e.g. a deadline firing after a memory breach already did).
  void Cancel(Status reason) {
    std::lock_guard<std::mutex> lock(mu_);
    if (cancelled_.load(std::memory_order_relaxed)) return;
    reason_ = std::move(reason);
    cancelled_.store(true, std::memory_order_release);
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  // The winning cancellation reason; OK when not cancelled.
  Status reason() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reason_;
  }

 private:
  std::atomic<bool> cancelled_{false};
  mutable std::mutex mu_;
  Status reason_;
};

}  // namespace iawj

#endif  // IAWJ_COMMON_CANCEL_H_
