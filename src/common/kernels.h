// Hot-path kernel selection (scalar vs cache-conscious).
//
// The paper's microarchitectural analysis (Fig. 8, Fig. 19, Fig. 21) shows
// the lazy algorithms bound by partition/build/probe memory behaviour. The
// cache-conscious kernels close that gap: a software write-combining scatter
// (partition/swwc.h) and prefetch-batched hash build/probe (hash/prefetch.h).
// This header owns the knob that picks between them:
//
//   kAuto   — cache-conscious kernels wherever they are bit-identical to the
//             scalar ones (i.e. everywhere except SimTracer builds); defers
//             to $IAWJ_KERNELS when set.
//   kScalar — the original one-tuple-at-a-time loops.
//   kSwwc   — force the cache-conscious kernels (still falls back to scalar
//             under SimTracer so the Fig. 8 cache simulation stays faithful:
//             the simulator has no prefetcher and models per-access LRU, so
//             staging-buffer traffic would distort the traces it exists to
//             reproduce).
//
// Every kernel pair produces identical output (same bytes, same order, same
// cursor end-state); the differential test suite enforces that across all
// eight algorithms.
#ifndef IAWJ_COMMON_KERNELS_H_
#define IAWJ_COMMON_KERNELS_H_

#include <string_view>

namespace iawj {

enum class KernelMode { kAuto, kScalar, kSwwc };

inline constexpr KernelMode kAllKernelModes[] = {
    KernelMode::kAuto, KernelMode::kScalar, KernelMode::kSwwc};

std::string_view KernelModeName(KernelMode mode);

// Parses "auto" / "scalar" / "swwc"; returns false (and leaves *mode
// untouched) on anything else.
bool ParseKernelMode(std::string_view text, KernelMode* mode);

// $IAWJ_KERNELS, or kAuto when unset/unparseable (a bad value warns once).
KernelMode KernelModeFromEnv();

// Resolves the spec-level knob: an explicit mode wins, kAuto defers to the
// environment (mirroring how deadline_ms / the supervision knobs resolve).
KernelMode ResolveKernelMode(KernelMode spec_mode);

// The per-algorithm decision: should this hot path run the cache-conscious
// kernels? True for kAuto and kSwwc on untraced (NullTracer) builds; always
// false when the cache simulator is attached.
bool UseCacheKernels(KernelMode spec_mode, bool tracer_enabled);

}  // namespace iawj

#endif  // IAWJ_COMMON_KERNELS_H_
