// Hot-path kernel selection (scalar vs cache-conscious vs vectorized vs
// lock-free).
//
// The paper's microarchitectural analysis (Fig. 8, Fig. 19, Fig. 21) shows
// the lazy algorithms bound by partition/build/probe memory behaviour. The
// kernel variants close that gap layer by layer: a software write-combining
// scatter (partition/swwc.h), a prefetch-batched hash probe
// (hash/prefetch.h), an AVX2 vertical SIMD probe over the open-addressing
// table (hash/simd_probe.h), and a CAS-based lock-free build for the NPJ
// shared table (hash/lockfree_table.h). This header owns the knob that
// picks between them:
//
//   kAuto     — best bit-identical kernels (currently the swwc plan);
//               defers to $IAWJ_KERNELS when set.
//   kScalar   — the original one-tuple-at-a-time loops everywhere.
//   kSwwc     — SWWC scatter + prefetch-batched probe. The batched *build*
//               this mode used to select was retired after it regressed to
//               0.95x of scalar (BENCH_baseline.json "notes"); builds now
//               resolve back to scalar and a one-time stderr note records
//               the substitution.
//   kSimd     — the swwc plan, plus the AVX2 vertical probe on
//               linear-probe tables (gather 8 keys, compare-mask). Runtime
//               dispatched: hosts without AVX2 (or with $IAWJ_SIMD_PROBE=0)
//               fall back to the batched scalar probe, byte-identically.
//   kLockfree — the swwc plan, plus the CAS head-pointer build on the NPJ
//               shared table (no latches).
//
// SimTracer builds always run scalar so the Fig. 8 cache simulation stays
// faithful: the simulator has no prefetcher and models per-access LRU, so
// staging-buffer/vector traffic would distort the traces it reproduces.
//
// Every kernel plan produces identical output (same match multiset, same
// checksum, same cursor end-state); the differential test suite enforces
// that across all eight algorithms x all modes x both schedulers.
#ifndef IAWJ_COMMON_KERNELS_H_
#define IAWJ_COMMON_KERNELS_H_

#include <string_view>

namespace iawj {

enum class KernelMode { kAuto, kScalar, kSwwc, kSimd, kLockfree };

inline constexpr KernelMode kAllKernelModes[] = {
    KernelMode::kAuto, KernelMode::kScalar, KernelMode::kSwwc,
    KernelMode::kSimd, KernelMode::kLockfree};

std::string_view KernelModeName(KernelMode mode);

// Parses "auto" / "scalar" / "swwc" / "simd" / "lockfree"; returns false
// (and leaves *mode untouched) on anything else.
bool ParseKernelMode(std::string_view text, KernelMode* mode);

// $IAWJ_KERNELS, or kAuto when unset/unparseable (a bad value warns once).
KernelMode KernelModeFromEnv();

// Resolves the spec-level knob: an explicit mode wins, kAuto defers to the
// environment (mirroring how deadline_ms / the supervision knobs resolve).
KernelMode ResolveKernelMode(KernelMode spec_mode);

// The fully resolved per-site kernel decisions for one run. Each flag names
// the variant a hot path should take when it has that substrate; sites
// without the substrate (e.g. a sort join with no hash build) simply never
// consult the flag. Run records serialize the plan as the v8 `kernels`
// block via the *VariantName helpers below.
struct KernelPlan {
  KernelMode mode = KernelMode::kScalar;  // resolved; never kAuto
  bool swwc_scatter = false;   // radix scatter via write-combining buffers
  bool batched_probe = false;  // group-prefetched probe batches
  bool simd_probe = false;     // AVX2 vertical probe (linear-probe tables);
                               // already false when the host lacks AVX2
  bool lockfree_build = false;  // CAS build on the NPJ shared table
};

// Resolves spec mode + environment + tracer + host capability into the
// per-site plan. Tracer-enabled (SimTracer) runs always get the all-scalar
// plan. Emits the one-time batched-build retirement note on the first
// non-scalar resolution (see KernelMode::kSwwc above).
KernelPlan ResolveKernelPlan(KernelMode spec_mode, bool tracer_enabled);

// Per-phase variant names for the run-record v8 `kernels` block.
std::string_view KernelScatterVariant(const KernelPlan& plan);  // scalar|swwc
std::string_view KernelBuildVariant(const KernelPlan& plan);  // scalar|lockfree
std::string_view KernelProbeVariant(
    const KernelPlan& plan);  // scalar|batched|simd

// The per-algorithm decision: should this hot path run the cache-conscious
// kernels? True for every non-scalar mode on untraced (NullTracer) builds;
// always false when the cache simulator is attached. Retained for the
// scatter/probe sites that only need the boolean.
bool UseCacheKernels(KernelMode spec_mode, bool tracer_enabled);

}  // namespace iawj

#endif  // IAWJ_COMMON_KERNELS_H_
