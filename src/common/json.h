// Minimal JSON support for the observability layer: a streaming writer with
// correct string escaping (used by the trace and run-record emitters) and a
// small recursive-descent parser (used by tests and iawj_trace_check to
// validate emitted artifacts). Not a general-purpose JSON library: no
// comments, no \u surrogate pairs on output, numbers are doubles.
#ifndef IAWJ_COMMON_JSON_H_
#define IAWJ_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace iawj::json {

// Escapes `s` per RFC 8259 (quotes, backslash, control characters) and
// returns it wrapped in double quotes.
std::string Quote(std::string_view s);

// Append-only JSON builder. The caller opens objects/arrays and the writer
// tracks comma placement; keys are only legal inside objects, bare values
// only inside arrays. Misuse aborts via CHECK.
class Writer {
 public:
  Writer& BeginObject();
  Writer& EndObject();
  Writer& BeginArray();
  Writer& EndArray();

  // Key for the next value (objects only).
  Writer& Key(std::string_view key);

  Writer& String(std::string_view value);
  Writer& Int(int64_t value);
  Writer& Uint(uint64_t value);
  Writer& Double(double value);  // emitted with enough digits to round-trip
  Writer& Bool(bool value);
  Writer& Null();

  // Convenience: Key(k) + value.
  Writer& Field(std::string_view key, std::string_view value);
  Writer& Field(std::string_view key, const char* value);
  Writer& Field(std::string_view key, int64_t value);
  Writer& Field(std::string_view key, uint64_t value);
  Writer& Field(std::string_view key, double value);
  Writer& Field(std::string_view key, bool value);

  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  // One entry per open container: true = object, false = array.
  std::vector<bool> stack_;
  std::vector<bool> has_elements_;
  bool key_pending_ = false;
};

// Parsed JSON value. Object member order is not preserved (std::map).
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  // Object member lookup; nullptr when absent or not an object.
  const Value* Find(const std::string& key) const;
};

// Parses `text` into *out. Trailing non-whitespace is an error.
Status Parse(std::string_view text, Value* out);

}  // namespace iawj::json

#endif  // IAWJ_COMMON_JSON_H_
