#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace iawj {

int LatencyHistogram::BucketIndex(uint64_t us) {
  if (us < kSubBuckets) return static_cast<int>(us);
  const int octave = 63 - std::countl_zero(us);
  const int shift = octave - 4;  // log2(kSubBuckets)
  const int sub = static_cast<int>((us >> shift) & (kSubBuckets - 1));
  const int index = (octave - 3) * kSubBuckets + sub;
  return std::min(index, kNumBuckets - 1);
}

double LatencyHistogram::BucketMidUs(int index) {
  if (index < kSubBuckets) return static_cast<double>(index) + 0.5;
  const int octave = index / kSubBuckets + 3;
  const int sub = index % kSubBuckets;
  const double base = std::ldexp(1.0, octave);
  const double step = base / kSubBuckets;
  return base + (sub + 0.5) * step;
}

void LatencyHistogram::RecordMs(double latency_ms) {
  const double us = std::max(latency_ms, 0.0) * 1000.0;
  const auto bucket = BucketIndex(static_cast<uint64_t>(us));
  ++buckets_[bucket];
  ++count_;
  sum_us_ += us;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_us_ += other.sum_us_;
}

double LatencyHistogram::QuantileMs(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += static_cast<double>(buckets_[i]);
    if (seen >= target) return BucketMidUs(i) / 1000.0;
  }
  return BucketMidUs(kNumBuckets - 1) / 1000.0;
}

double LatencyHistogram::MeanMs() const {
  return count_ == 0 ? 0 : sum_us_ / static_cast<double>(count_) / 1000.0;
}

}  // namespace iawj
