#include "src/common/flags.h"

#include <cstdlib>

namespace iawj {

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    if (arg.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    if (arg.rfind("no-", 0) == 0) {
      values_[arg.substr(3)] = "false";
      continue;
    }
    // "--name value" when the next token isn't a flag; otherwise boolean.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
  return Status::Ok();
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) {
  consumed_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t FlagParser::GetInt(const std::string& name, int64_t default_value) {
  consumed_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? default_value
                             : std::strtoll(it->second.c_str(), nullptr, 10);
}

double FlagParser::GetDouble(const std::string& name, double default_value) {
  consumed_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? default_value
                             : std::strtod(it->second.c_str(), nullptr);
}

bool FlagParser::GetBool(const std::string& name, bool default_value) {
  consumed_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second != "false" && it->second != "0";
}

std::vector<std::string> FlagParser::Unknown() const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : values_) {
    if (consumed_.count(name) == 0) unknown.push_back(name);
  }
  return unknown;
}

}  // namespace iawj
