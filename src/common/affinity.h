// Thread-to-core pinning and CPU topology discovery.
//
// Pinning matches the paper's one-thread-per-core setup and is best-effort:
// on hosts with fewer cores than worker threads (including the single-core
// CI machine this repo is validated on) the request simply wraps around or
// fails silently — the algorithms are correct either way.
//
// The topology side feeds the morsel scheduler's NUMA-aware placement
// (join/scheduler.h): each logical core maps to one NUMA node, discovered
// from /sys/devices/system/node/node*/cpulist with a single-node fallback.
// $IAWJ_NUMA_NODES=<n> overrides discovery with n synthetic contiguous-core
// nodes so the remote-steal policy is testable on single-node hardware.
#ifndef IAWJ_COMMON_AFFINITY_H_
#define IAWJ_COMMON_AFFINITY_H_

#include <pthread.h>
#include <sched.h>
#include <unistd.h>

#include <vector>

namespace iawj {

// The logical core PinCurrentThreadToCore(core_index) would target, or -1
// when the core count is unknown.
inline int ResolvePinnedCore(int core_index) {
  const long num_cores = sysconf(_SC_NPROCESSORS_ONLN);
  if (num_cores <= 0) return -1;
  return core_index % static_cast<int>(num_cores);
}

// Pins the calling thread to logical core (core_index % #cores).
// Returns true on success.
inline bool PinCurrentThreadToCore(int core_index) {
  const int core = ResolvePinnedCore(core_index);
  if (core < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

// Which NUMA node each logical core belongs to. Always well-formed: at
// least one node, every core mapped.
struct CpuTopology {
  int num_cores = 1;
  int num_nodes = 1;
  std::vector<int> node_of_core;  // size num_cores, values in [0, num_nodes)

  int NodeOfCore(int core) const {
    if (core < 0 || core >= static_cast<int>(node_of_core.size())) return 0;
    return node_of_core[static_cast<size_t>(core)];
  }
};

// Parses a Linux cpulist string ("0-3,8,10-11") into core indices capped at
// num_cores. Exposed for tests. Returns empty on malformed input.
std::vector<int> ParseCpuList(const char* text, int num_cores);

// Discovers the host topology. Order of precedence:
//   1. $IAWJ_NUMA_NODES=<n> (n >= 1): n synthetic nodes of contiguous cores
//      (core c -> node c * n / num_cores) — the single-node CI escape hatch
//      for exercising remote-steal paths.
//   2. /sys/devices/system/node/node<k>/cpulist, one node per directory.
//   3. Fallback: one node spanning every core.
// Re-reads the environment on every call (cheap: a handful of sysfs files),
// so tests can flip $IAWJ_NUMA_NODES between runs.
CpuTopology DetectTopology();

}  // namespace iawj

#endif  // IAWJ_COMMON_AFFINITY_H_
