// Thread-to-core pinning, matching the paper's one-thread-per-core setup.
//
// Pinning is best-effort: on hosts with fewer cores than worker threads
// (including the single-core CI machine this repo is validated on) the
// request simply wraps around or fails silently — the algorithms are
// correct either way.
#ifndef IAWJ_COMMON_AFFINITY_H_
#define IAWJ_COMMON_AFFINITY_H_

#include <pthread.h>
#include <sched.h>
#include <unistd.h>

namespace iawj {

// The logical core PinCurrentThreadToCore(core_index) would target, or -1
// when the core count is unknown.
inline int ResolvePinnedCore(int core_index) {
  const long num_cores = sysconf(_SC_NPROCESSORS_ONLN);
  if (num_cores <= 0) return -1;
  return core_index % static_cast<int>(num_cores);
}

// Pins the calling thread to logical core (core_index % #cores).
// Returns true on success.
inline bool PinCurrentThreadToCore(int core_index) {
  const int core = ResolvePinnedCore(core_index);
  if (core < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

}  // namespace iawj

#endif  // IAWJ_COMMON_AFFINITY_H_
