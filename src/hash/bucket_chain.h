// Single-writer bucket-chain hash table (Balkesen et al. design).
//
// The table is an array of fixed-capacity buckets; tuples of the same hash
// bucket chain into overflow buckets drawn from chunked bump pools. This is
// the structure PRJ builds per cache-resident partition and the one SHJ
// maintains per stream (paper §4.2.2: "we use ... the implementation of
// bucket chain hash table used in PRJ to implement the hash table of SHJ").
//
// With heavy key duplication every duplicate lands in one chain, so probes
// walk long lists — deliberately preserved, since that cost drives the
// paper's sort-vs-hash findings (§5.3.2).
//
// The Tracer template parameter feeds the cache simulator in profiling
// builds; NullTracer compiles to nothing.
#ifndef IAWJ_HASH_BUCKET_CHAIN_H_
#define IAWJ_HASH_BUCKET_CHAIN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/bits.h"
#include "src/common/logging.h"
#include "src/common/tuple.h"
#include "src/hash/hash_fn.h"
#include "src/memory/tracker.h"
#include "src/profiling/cache_sim.h"

namespace iawj {

// Returns the number of hash bits that gives ~2 tuples per bucket.
int BucketBitsForTuples(uint64_t expected_tuples);

template <typename Tracer = NullTracer>
class BucketChainTable {
 public:
  static constexpr int kBucketCapacity = 2;

  struct Bucket {
    uint32_t count;
    Tuple tuples[kBucketCapacity];
    Bucket* next;
  };

  explicit BucketChainTable(uint64_t expected_tuples)
      : bits_(BucketBitsForTuples(expected_tuples)),
        buckets_(size_t{1} << bits_),
        tracked_bytes_(static_cast<int64_t>(buckets_.size() * sizeof(Bucket))) {
    mem::Add(tracked_bytes_);
    for (auto& b : buckets_) {
      b.count = 0;
      b.next = nullptr;
    }
  }

  ~BucketChainTable() { mem::Add(-tracked_bytes_); }

  BucketChainTable(const BucketChainTable&) = delete;
  BucketChainTable& operator=(const BucketChainTable&) = delete;

  // O(1) insert (Balkesen-style): a full head bucket is spilled into a fresh
  // overflow bucket chained behind it, so the head always has room.
  void Insert(Tuple t, Tracer& tracer) {
    Bucket* head = &buckets_[HashToBucket(t.key, bits_)];
    tracer.Access(head, sizeof(Bucket));
    if (head->count == kBucketCapacity) {
      Bucket* spill = AllocOverflow();
      *spill = *head;
      tracer.Access(spill, sizeof(Bucket));
      head->next = spill;
      head->count = 0;
    }
    head->tuples[head->count++] = t;
    ++size_;
  }

  // Prefetch hints for the batched kernels (hash/prefetch.h): pull the
  // bucket head that `key` hashes to toward L1 ahead of the Insert/Probe
  // that will touch it. Pure hints — no architectural effect.
  void PrefetchProbe(uint32_t key) const {
    __builtin_prefetch(&buckets_[HashToBucket(key, bits_)], /*rw=*/0, 3);
  }
  void PrefetchInsert(uint32_t key) const {
    __builtin_prefetch(&buckets_[HashToBucket(key, bits_)], /*rw=*/1, 3);
  }

  // Invokes on_match(Tuple) for every stored tuple with the given key.
  template <typename F>
  void Probe(uint32_t key, F&& on_match, Tracer& tracer) const {
    const Bucket* b = &buckets_[HashToBucket(key, bits_)];
    while (b != nullptr) {
      tracer.Access(b, sizeof(Bucket));
      for (uint32_t i = 0; i < b->count; ++i) {
        if (b->tuples[i].key == key) on_match(b->tuples[i]);
      }
      b = b->next;
    }
  }

  uint64_t size() const { return size_; }
  int64_t memory_bytes() const { return tracked_bytes_; }

 private:
  static constexpr size_t kChunkBuckets = 4096;

  Bucket* AllocOverflow() {
    if (chunk_used_ == kChunkBuckets || chunks_.empty()) {
      chunks_.push_back(std::make_unique<Bucket[]>(kChunkBuckets));
      chunk_used_ = 0;
      const auto bytes =
          static_cast<int64_t>(kChunkBuckets * sizeof(Bucket));
      mem::Add(bytes);
      tracked_bytes_ += bytes;
    }
    Bucket* b = &chunks_.back()[chunk_used_++];
    b->count = 0;
    b->next = nullptr;
    return b;
  }

  int bits_;
  std::vector<Bucket> buckets_;
  std::vector<std::unique_ptr<Bucket[]>> chunks_;
  size_t chunk_used_ = 0;
  uint64_t size_ = 0;
  int64_t tracked_bytes_;
};

}  // namespace iawj

#endif  // IAWJ_HASH_BUCKET_CHAIN_H_
