// Shared, latched bucket-chain hash table for the no-partitioning join.
//
// NPJ (Blanas et al.) builds one table over R with all threads inserting
// concurrently; each bucket carries a byte-wide spinlock, exactly like the
// latch array in the Balkesen benchmark code. After the build barrier the
// probe phase is read-only and takes no latches. The shared table is what
// makes NPJ memory-hungry and contention-prone under key duplication —
// behaviour the paper analyses in §5.3.2 and Table 5.
#ifndef IAWJ_HASH_CONCURRENT_TABLE_H_
#define IAWJ_HASH_CONCURRENT_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/bits.h"
#include "src/common/logging.h"
#include "src/common/tuple.h"
#include "src/hash/hash_fn.h"
#include "src/memory/tracker.h"
#include "src/profiling/cache_sim.h"

namespace iawj {

template <typename Tracer = NullTracer>
class ConcurrentBucketChainTable {
 public:
  static constexpr int kBucketCapacity = 2;

  struct Bucket {
    uint32_t count;
    Tuple tuples[kBucketCapacity];
    Bucket* next;
  };

  // Tracked bytes the constructor will charge for `expected_tuples` (the
  // bucket array plus latches; overflow buckets are charged as they spill).
  // Lets NPJ's Setup preflight the allocation against the memory budget.
  static int64_t TrackedBytesFor(uint64_t expected_tuples) {
    const size_t buckets = size_t{1} << BitsFor(expected_tuples);
    return static_cast<int64_t>(buckets * (sizeof(Bucket) + 1));
  }

  explicit ConcurrentBucketChainTable(uint64_t expected_tuples)
      : bits_(BitsFor(expected_tuples)),
        buckets_(size_t{1} << bits_),
        latches_(size_t{1} << bits_),
        tracked_bytes_(static_cast<int64_t>(
            buckets_.size() * sizeof(Bucket) + latches_.size())) {
    mem::Add(tracked_bytes_);
    for (auto& b : buckets_) {
      b.count = 0;
      b.next = nullptr;
    }
    for (auto& l : latches_) l.store(0, std::memory_order_relaxed);
  }

  ~ConcurrentBucketChainTable() { mem::Add(-tracked_bytes_); }

  ConcurrentBucketChainTable(const ConcurrentBucketChainTable&) = delete;
  ConcurrentBucketChainTable& operator=(const ConcurrentBucketChainTable&) =
      delete;

  // Thread-safe O(1) insert (bucket-granular latching): a full head bucket
  // is spilled into a fresh overflow bucket chained behind it.
  void Insert(Tuple t, Tracer& tracer) {
    const uint32_t index = HashToBucket(t.key, bits_);
    Lock(index);
    Bucket* head = &buckets_[index];
    tracer.Access(head, sizeof(Bucket));
    if (head->count == kBucketCapacity) {
      Bucket* spill = AllocOverflow();
      spill->count = head->count;
      spill->tuples[0] = head->tuples[0];
      spill->tuples[1] = head->tuples[1];
      spill->next = head->next;
      tracer.Access(spill, sizeof(Bucket));
      head->next = spill;
      head->count = 0;
    }
    head->tuples[head->count++] = t;
    Unlock(index);
  }

  // Prefetch hints for the batched kernels (hash/prefetch.h). The insert
  // hint pulls both the latch byte and the bucket: an insert touches the
  // latch first, and the two live in different arrays.
  void PrefetchProbe(uint32_t key) const {
    __builtin_prefetch(&buckets_[HashToBucket(key, bits_)], /*rw=*/0, 3);
  }
  void PrefetchInsert(uint32_t key) const {
    const uint32_t index = HashToBucket(key, bits_);
    __builtin_prefetch(&latches_[index], /*rw=*/1, 3);
    __builtin_prefetch(&buckets_[index], /*rw=*/1, 3);
  }

  // Read-only probe; callers must ensure all inserts happened-before (the
  // runner's build/probe barrier provides that).
  template <typename F>
  void Probe(uint32_t key, F&& on_match, Tracer& tracer) const {
    const Bucket* b = &buckets_[HashToBucket(key, bits_)];
    while (b != nullptr) {
      tracer.Access(b, sizeof(Bucket));
      for (uint32_t i = 0; i < b->count; ++i) {
        if (b->tuples[i].key == key) on_match(b->tuples[i]);
      }
      b = b->next;
    }
  }

  int64_t memory_bytes() const {
    return tracked_bytes_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kChunkBuckets = 4096;

  static int BitsFor(uint64_t expected_tuples) {
    return Log2Ceil(std::max<uint64_t>(expected_tuples / kBucketCapacity, 16));
  }

  void Lock(uint32_t index) {
    auto& latch = latches_[index];
    uint8_t expected = 0;
    while (!latch.compare_exchange_weak(expected, 1,
                                        std::memory_order_acquire)) {
      expected = 0;
    }
  }

  void Unlock(uint32_t index) {
    latches_[index].store(0, std::memory_order_release);
  }

  Bucket* AllocOverflow() {
    // Overflow allocation is much rarer than inserts; a single global
    // spinlock keeps the pool simple (and mirrors the contention NPJ pays on
    // shared state anyway).
    uint8_t expected = 0;
    while (!alloc_lock_.compare_exchange_weak(expected, 1,
                                              std::memory_order_acquire)) {
      expected = 0;
    }
    if (chunk_used_ == kChunkBuckets || chunks_.empty()) {
      chunks_.push_back(std::make_unique<Bucket[]>(kChunkBuckets));
      chunk_used_ = 0;
      const auto bytes = static_cast<int64_t>(kChunkBuckets * sizeof(Bucket));
      mem::Add(bytes);
      tracked_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    }
    Bucket* b = &chunks_.back()[chunk_used_++];
    b->count = 0;
    b->next = nullptr;
    alloc_lock_.store(0, std::memory_order_release);
    return b;
  }

  int bits_;
  std::vector<Bucket> buckets_;
  std::vector<std::atomic<uint8_t>> latches_;
  std::vector<std::unique_ptr<Bucket[]>> chunks_;
  size_t chunk_used_ = 0;
  std::atomic<uint8_t> alloc_lock_{0};
  std::atomic<int64_t> tracked_bytes_;
};

}  // namespace iawj

#endif  // IAWJ_HASH_CONCURRENT_TABLE_H_
