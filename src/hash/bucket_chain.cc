#include "src/hash/bucket_chain.h"

#include <algorithm>

namespace iawj {

int BucketBitsForTuples(uint64_t expected_tuples) {
  const uint64_t want_buckets =
      std::max<uint64_t>(expected_tuples /
                             BucketChainTable<>::kBucketCapacity,
                         16);
  return Log2Ceil(want_buckets);
}

}  // namespace iawj
