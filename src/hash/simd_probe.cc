#include "src/hash/simd_probe.h"

#include <cstdlib>
#include <cstring>

namespace iawj {
namespace kernels {

namespace {

bool EnvDisablesSimdProbe() {
  const char* env = std::getenv("IAWJ_SIMD_PROBE");
  if (env == nullptr || *env == '\0') return false;
  return std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
         std::strcmp(env, "false") == 0;
}

bool CpuHasAvx2() {
#ifdef __AVX2__
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
#else
  return false;
#endif
}

thread_local const char* g_unsupported_reason = "";

}  // namespace

bool SimdProbeSupported() {
#ifndef __AVX2__
  g_unsupported_reason = "compiled without AVX2";
  return false;
#else
  if (!CpuHasAvx2()) {
    g_unsupported_reason = "cpu lacks AVX2";
    return false;
  }
  if (EnvDisablesSimdProbe()) {
    g_unsupported_reason = "disabled via IAWJ_SIMD_PROBE";
    return false;
  }
  g_unsupported_reason = "";
  return true;
#endif
}

const char* SimdProbeUnsupportedReason() { return g_unsupported_reason; }

}  // namespace kernels
}  // namespace iawj
