// Open-addressing (linear probing) hash table over tuples.
//
// An alternative to the Balkesen-style bucket-chain table (see
// bucket_chain.h): one flat power-of-two slot array, duplicates cluster in
// consecutive slots, probes scan until the first empty slot. Insert-only
// (no tombstones needed) with automatic doubling at ~70% load. Exposed as
// JoinSpec::hash_table_kind so PRJ and SHJ can run on either structure —
// the `ext_hash_tables` ablation quantifies the difference the paper's
// related work (memory-efficient hash tables, Barber et al.) alludes to.
//
// Empty slots are marked with key == kEmptyKey (0xffffffff), which the
// workload generators never produce (keys stay below 2^31; see tuple.h).
#ifndef IAWJ_HASH_LINEAR_PROBE_H_
#define IAWJ_HASH_LINEAR_PROBE_H_

#include <cstdint>
#include <vector>

#include "src/common/bits.h"
#include "src/common/logging.h"
#include "src/common/tuple.h"
#include "src/hash/hash_fn.h"
#include "src/memory/tracker.h"
#include "src/profiling/cache_sim.h"

namespace iawj {

template <typename Tracer = NullTracer>
class LinearProbeTable {
 public:
  static constexpr uint32_t kEmptyKey = 0xffffffffu;

  explicit LinearProbeTable(uint64_t expected_tuples) {
    const uint64_t capacity =
        NextPow2(std::max<uint64_t>(expected_tuples * 2, 32));
    slots_.assign(capacity, Tuple{0, kEmptyKey});
    mask_ = capacity - 1;
    tracked_bytes_ = static_cast<int64_t>(capacity * sizeof(Tuple));
    mem::Add(tracked_bytes_);
  }

  ~LinearProbeTable() { mem::Add(-tracked_bytes_); }

  LinearProbeTable(const LinearProbeTable&) = delete;
  LinearProbeTable& operator=(const LinearProbeTable&) = delete;

  void Insert(Tuple t, Tracer& tracer) {
    IAWJ_DCHECK(t.key != kEmptyKey);
    if ((size_ + 1) * 10 > slots_.size() * 7) Grow();
    uint64_t idx = MultHash32(t.key) & mask_;
    while (true) {
      tracer.Access(&slots_[idx], sizeof(Tuple));
      if (slots_[idx].key == kEmptyKey) {
        slots_[idx] = t;
        ++size_;
        return;
      }
      idx = (idx + 1) & mask_;
    }
  }

  // Prefetch hints for the batched kernels (hash/prefetch.h): pull the
  // cluster's first slot toward L1. Clusters span consecutive slots, so one
  // line usually covers the whole scan at sane load factors.
  void PrefetchProbe(uint32_t key) const {
    __builtin_prefetch(&slots_[MultHash32(key) & mask_], /*rw=*/0, 3);
  }
  void PrefetchInsert(uint32_t key) const {
    __builtin_prefetch(&slots_[MultHash32(key) & mask_], /*rw=*/1, 3);
  }

  // Invokes on_match(Tuple) for every stored tuple with the given key.
  // Linear probing with no deletions: the cluster containing all equal keys
  // ends at the first empty slot.
  template <typename F>
  void Probe(uint32_t key, F&& on_match, Tracer& tracer) const {
    uint64_t idx = MultHash32(key) & mask_;
    while (true) {
      tracer.Access(&slots_[idx], sizeof(Tuple));
      if (slots_[idx].key == kEmptyKey) return;
      if (slots_[idx].key == key) on_match(slots_[idx]);
      idx = (idx + 1) & mask_;
    }
  }

  uint64_t size() const { return size_; }
  int64_t memory_bytes() const { return tracked_bytes_; }

  // Raw storage for the AVX2 vertical probe (hash/simd_probe.h): the flat
  // power-of-two slot array and its index mask. Capacity is always >= 32,
  // so an 8-lane gather never wraps more than once per step.
  const Tuple* slots() const { return slots_.data(); }
  uint64_t mask() const { return mask_; }

 private:
  void Grow() {
    std::vector<Tuple> old = std::move(slots_);
    const uint64_t capacity = old.size() * 2;
    slots_.assign(capacity, Tuple{0, kEmptyKey});
    mask_ = capacity - 1;
    mem::Add(static_cast<int64_t>(capacity * sizeof(Tuple)) -
             static_cast<int64_t>(old.size() * sizeof(Tuple)));
    tracked_bytes_ += static_cast<int64_t>(
        (capacity - old.size()) * sizeof(Tuple));
    for (const Tuple& t : old) {
      if (t.key == kEmptyKey) continue;
      uint64_t idx = MultHash32(t.key) & mask_;
      while (slots_[idx].key != kEmptyKey) idx = (idx + 1) & mask_;
      slots_[idx] = t;
    }
  }

  std::vector<Tuple> slots_;
  uint64_t mask_ = 0;
  uint64_t size_ = 0;
  int64_t tracked_bytes_ = 0;
};

}  // namespace iawj

#endif  // IAWJ_HASH_LINEAR_PROBE_H_
