// Lock-free (CAS head-pointer) shared hash table for the no-partitioning
// join.
//
// The latched ConcurrentBucketChainTable serializes every insert to a
// bucket behind a byte spinlock; under key skew the hot latches become the
// scaling ceiling — the contention effect the IBWJ study (PAPERS.md)
// measures on concurrent stream-join indexes. This variant removes the
// latches entirely: each bucket is a single std::atomic<Node*> head, and an
// insert publishes one tuple-sized node with a release compare-exchange
// push. There is no ABA hazard because the table is insert-only (no node is
// ever unlinked), and no lost-insert window because the CAS retries with
// the freshly observed head.
//
// Nodes come from a pool sized exactly to expected_tuples and carved by an
// atomic bump index — NPJ sizes the table to |R| up front, so steady state
// never allocates. Each thread claims nodes in batches of 64 through a
// thread-local cursor, so the global bump is touched once per batch rather
// than once per insert (the per-insert fetch_add otherwise costs as much as
// the publishing CAS itself). Inserts beyond the expectation — including
// the tail a thread strands when its last batch goes partly unused — spill
// to spinlocked overflow chunks charged to the memory tracker as they
// appear, mirroring the latched table's overflow pool. TrackedBytesFor
// lets NPJ preflight the whole allocation against the memory budget before
// construction.
//
// Probe is read-only and latch-free as before: the runner's build/probe
// barrier orders all inserts before any probe, and each head load is an
// acquire so a racing reader (the stress tests probe mid-build) still sees
// fully initialized nodes behind any head it observes.
//
// CAS pushes make each chain LIFO in publication order, so a bucket's match
// order depends on thread interleaving — exactly as it already did under
// bucket latching. Downstream equality is checked on match count plus the
// order-insensitive checksum (MatchSink), which the differential grid and
// the lock-free stress suite assert against single-threaded builds.
#ifndef IAWJ_HASH_LOCKFREE_TABLE_H_
#define IAWJ_HASH_LOCKFREE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/bits.h"
#include "src/common/logging.h"
#include "src/common/tuple.h"
#include "src/hash/hash_fn.h"
#include "src/memory/tracker.h"
#include "src/profiling/cache_sim.h"

namespace iawj {

template <typename Tracer = NullTracer>
class LockFreeChainTable {
 public:
  struct Node {
    Tuple tuple;
    Node* next;
  };

  // Tracked bytes the constructor will charge for `expected_tuples` (head
  // array plus the exact-size node pool; overflow chunks are charged as
  // they spill). Lets NPJ's Setup preflight against the memory budget.
  static int64_t TrackedBytesFor(uint64_t expected_tuples) {
    const size_t buckets = size_t{1} << BitsFor(expected_tuples);
    return static_cast<int64_t>(buckets * sizeof(std::atomic<Node*>) +
                                PoolNodes(expected_tuples) * sizeof(Node));
  }

  explicit LockFreeChainTable(uint64_t expected_tuples)
      : bits_(BitsFor(expected_tuples)),
        heads_(size_t{1} << bits_),
        pool_size_(PoolNodes(expected_tuples)),
        pool_(std::make_unique<Node[]>(pool_size_)),
        tracked_bytes_(TrackedBytesFor(expected_tuples)) {
    mem::Add(tracked_bytes_.load(std::memory_order_relaxed));
    for (auto& h : heads_) h.store(nullptr, std::memory_order_relaxed);
  }

  ~LockFreeChainTable() {
    mem::Add(-tracked_bytes_.load(std::memory_order_relaxed));
  }

  LockFreeChainTable(const LockFreeChainTable&) = delete;
  LockFreeChainTable& operator=(const LockFreeChainTable&) = delete;

  // Thread-safe, latch-free insert: claim a node, fill it, publish it with
  // a release CAS on the bucket head. The release pairs with the acquire
  // head load in Probe, so any reader that sees the node sees its tuple.
  void Insert(Tuple t, Tracer& tracer) {
    Node* node = AcquireNode();
    node->tuple = t;
    std::atomic<Node*>& head = heads_[HashToBucket(t.key, bits_)];
    tracer.Access(&head, sizeof(head));
    Node* expected = head.load(std::memory_order_relaxed);
    do {
      node->next = expected;
    } while (!head.compare_exchange_weak(expected, node,
                                         std::memory_order_release,
                                         std::memory_order_relaxed));
  }

  // Prefetch hints for the batched kernels (hash/prefetch.h): the head
  // pointer is the first (and under low duplication, only) line touched.
  void PrefetchProbe(uint32_t key) const {
    __builtin_prefetch(&heads_[HashToBucket(key, bits_)], /*rw=*/0, 3);
  }
  void PrefetchInsert(uint32_t key) const {
    __builtin_prefetch(&heads_[HashToBucket(key, bits_)], /*rw=*/1, 3);
  }

  // Latch-free probe. Safe concurrently with inserts (acquire/release on
  // the heads); sees every insert that happened-before the call, which the
  // runner's build/probe barrier makes all of them.
  template <typename F>
  void Probe(uint32_t key, F&& on_match, Tracer& tracer) const {
    const Node* n =
        heads_[HashToBucket(key, bits_)].load(std::memory_order_acquire);
    while (n != nullptr) {
      tracer.Access(n, sizeof(Node));
      if (n->tuple.key == key) on_match(n->tuple);
      n = n->next;
    }
  }

  // Nodes published so far, counted by walking every chain — O(buckets +
  // size), for the stress suite's tuple-conservation checks, not hot paths.
  // A claimed-but-unpublished node (a thread's unused batch tail) is
  // correctly absent.
  uint64_t size() const {
    uint64_t count = 0;
    for (const auto& h : heads_) {
      for (const Node* n = h.load(std::memory_order_acquire); n != nullptr;
           n = n->next) {
        ++count;
      }
    }
    return count;
  }

  int64_t memory_bytes() const {
    return tracked_bytes_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kChunkNodes = 4096;
  static constexpr uint64_t kClaimBatch = 64;

  static int BitsFor(uint64_t expected_tuples) {
    return Log2Ceil(std::max<uint64_t>(expected_tuples, 16));
  }

  static uint64_t PoolNodes(uint64_t expected_tuples) {
    return std::max<uint64_t>(expected_tuples, 1);
  }

  // One claim cache per thread, keyed on a process-unique table id so a
  // table constructed at a dead table's address can never satisfy a claim
  // from the old pool's leftovers.
  struct ClaimCache {
    uint64_t table_id = 0;
    uint64_t next = 0;
    uint64_t end = 0;
  };

  static uint64_t NextTableId() {
    static std::atomic<uint64_t> id{0};
    return id.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  Node* AcquireNode() {
    static thread_local ClaimCache cache;
    if (cache.table_id != table_id_ || cache.next == cache.end) {
      const uint64_t begin =
          pool_next_.fetch_add(kClaimBatch, std::memory_order_relaxed);
      if (begin >= pool_size_) return AllocOverflow();
      cache.table_id = table_id_;
      cache.next = begin;
      cache.end = std::min(begin + kClaimBatch, pool_size_);
    }
    return &pool_[cache.next++];
  }

  Node* AllocOverflow() {
    // Only reachable past the expected tuple count; a global spinlock keeps
    // the rare path simple, exactly like the latched table's overflow pool.
    uint8_t expected = 0;
    while (!alloc_lock_.compare_exchange_weak(expected, 1,
                                              std::memory_order_acquire)) {
      expected = 0;
    }
    if (chunk_used_ == kChunkNodes || chunks_.empty()) {
      chunks_.push_back(std::make_unique<Node[]>(kChunkNodes));
      chunk_used_ = 0;
      const auto bytes = static_cast<int64_t>(kChunkNodes * sizeof(Node));
      mem::Add(bytes);
      tracked_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    }
    Node* n = &chunks_.back()[chunk_used_++];
    alloc_lock_.store(0, std::memory_order_release);
    return n;
  }

  int bits_;
  std::vector<std::atomic<Node*>> heads_;
  uint64_t pool_size_;
  std::unique_ptr<Node[]> pool_;
  std::atomic<uint64_t> pool_next_{0};
  const uint64_t table_id_ = NextTableId();
  std::vector<std::unique_ptr<Node[]>> chunks_;
  size_t chunk_used_ = 0;
  std::atomic<uint8_t> alloc_lock_{0};
  std::atomic<int64_t> tracked_bytes_;
};

}  // namespace iawj

#endif  // IAWJ_HASH_LOCKFREE_TABLE_H_
