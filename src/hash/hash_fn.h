// Hash functions used by the hash-join substrates.
#ifndef IAWJ_HASH_HASH_FN_H_
#define IAWJ_HASH_HASH_FN_H_

#include <cstdint>

namespace iawj {

// Fibonacci/Knuth multiplicative hashing — one multiply, well-mixed high
// bits. Callers take the top `bits` via ">> (32 - bits)" or mask after a
// shift; HashToBucket does it for them.
inline uint32_t MultHash32(uint32_t key) { return key * 2654435761u; }

// Maps key to [0, 2^bits).
inline uint32_t HashToBucket(uint32_t key, int bits) {
  return bits == 0 ? 0 : MultHash32(key) >> (32 - bits);
}

// 64-bit mixer used for order-insensitive match checksums in tests/metrics.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace iawj

#endif  // IAWJ_HASH_HASH_FN_H_
