// AVX2 vertical SIMD probe over the open-addressing hash table.
//
// A scalar linear-probe lookup walks its cluster one slot at a time: load a
// key, compare, branch, advance — a dependent chain whose latency the
// paper's Fig. 8/Table 5 miss analysis charges to the probe phase. The
// vertical kernel widens that walk to eight slots per step: gather the
// eight keys at slots (h, h+1, ..., h+7), compare-mask against the probe
// key and against the empty marker in two vector compares, then emit the
// matches below the first empty lane in slot order. At sane load factors
// (the table doubles at 70%) one step usually covers the entire cluster,
// so the branchy per-slot loop collapses to one gather + two compares —
// and the batch driver group-prefetches the next eight clusters while the
// current ones resolve, the same MLP trick as hash/prefetch.h.
//
// Match order is byte-identical to the scalar Probe: keys are processed in
// input order, and within a cluster matches are emitted in slot order
// (ascending lane index, bounded by the first empty lane). The
// differential and property suites assert exact sequence equality.
//
// Dispatch: the AVX2 body compiles only under __AVX2__ (the build uses
// -march=native, matching sort/avxsort.cc); SimdProbeSupported() adds the
// runtime gates — __builtin_cpu_supports("avx2") and the
// $IAWJ_SIMD_PROBE=0 kill switch — and callers that find it false take the
// always-compiled scalar fallback, which produces the same sequence.
#ifndef IAWJ_HASH_SIMD_PROBE_H_
#define IAWJ_HASH_SIMD_PROBE_H_

#include <cstddef>
#include <cstdint>
#include <utility>

#ifdef __AVX2__
#include <immintrin.h>
#endif

#include "src/common/kernels.h"
#include "src/common/logging.h"
#include "src/common/tuple.h"
#include "src/hash/hash_fn.h"
#include "src/hash/linear_probe.h"
#include "src/hash/prefetch.h"

namespace iawj {
namespace kernels {

// True when the vertical probe may run here: AVX2 compiled in AND present
// on this CPU AND not disabled via $IAWJ_SIMD_PROBE=0|off|false. The env
// gate is re-read on every call (it is consulted once per run resolution,
// not per tuple) so tests can flip the kill switch without respawning.
bool SimdProbeSupported();

// Human-readable reason the last SimdProbeSupported() said false ("" when
// supported); surfaces in the microbench JSON and dispatch tests.
const char* SimdProbeUnsupportedReason();

// Scalar reference walk of one cluster — the compiled-everywhere fallback,
// and the sequence the vector body must reproduce exactly.
template <typename OnMatch>
inline void ProbeKeyScalar(const Tuple* slots, uint64_t mask, uint32_t key,
                           OnMatch&& on_match) {
  uint64_t idx = MultHash32(key) & mask;
  while (true) {
    const Tuple slot = slots[idx];
    if (slot.key == LinearProbeTable<>::kEmptyKey) return;
    if (slot.key == key) on_match(slot);
    idx = (idx + 1) & mask;
  }
}

#ifdef __AVX2__
// Eight-slot vertical cluster scan. Preconditions: capacity (mask + 1) is a
// power of two >= 32 (LinearProbeTable guarantees >= 32), keys < 2^31 so
// the empty marker 0xffffffff never equals a probe key, and the table holds
// at least one empty slot (the 70% growth bound guarantees termination).
template <typename OnMatch>
inline void ProbeKeySimd(const Tuple* slots, uint64_t mask, uint32_t key,
                         OnMatch&& on_match) {
  IAWJ_DCHECK(mask >= 31);
  const __m256i lane = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i vkey = _mm256_set1_epi32(static_cast<int>(key));
  const __m256i vempty =
      _mm256_set1_epi32(static_cast<int>(LinearProbeTable<>::kEmptyKey));
  const __m256i vmask = _mm256_set1_epi32(static_cast<int>(mask));
  // Keys sit 4 bytes into each 8-byte slot: gather from &slots[0].key with
  // the slot index scaled by sizeof(Tuple).
  const int* key_base = reinterpret_cast<const int*>(&slots[0].key);
  uint64_t idx = MultHash32(key) & mask;
  while (true) {
    const __m256i vidx = _mm256_and_si256(
        _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(idx)), lane),
        vmask);
    const __m256i keys = _mm256_i32gather_epi32(key_base, vidx, 8);
    const uint32_t match_bits = static_cast<uint32_t>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(keys, vkey))));
    const uint32_t empty_bits = static_cast<uint32_t>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(keys, vempty))));
    // Matches past the first empty lane belong to other clusters.
    const uint32_t limit =
        empty_bits != 0 ? __builtin_ctz(empty_bits) : 8u;
    uint32_t emit = match_bits & ((1u << limit) - 1u);
    while (emit != 0) {
      const uint32_t j = static_cast<uint32_t>(__builtin_ctz(emit));
      on_match(slots[(idx + j) & mask]);
      emit &= emit - 1;
    }
    if (empty_bits != 0) return;
    idx = (idx + 8) & mask;
  }
}
#endif  // __AVX2__

// One key against one table, taking the vector body when compiled in.
// Callers gate on SimdProbeSupported() (via KernelPlan::simd_probe); on
// hosts where the body is compiled out this degrades to the scalar walk.
template <typename Tracer, typename OnMatch>
inline void SimdProbeKey(const LinearProbeTable<Tracer>& table, uint32_t key,
                         OnMatch&& on_match) {
#ifdef __AVX2__
  ProbeKeySimd(table.slots(), table.mask(),
               key, std::forward<OnMatch>(on_match));
#else
  ProbeKeyScalar(table.slots(), table.mask(), key,
                 std::forward<OnMatch>(on_match));
#endif
}

// Probes tuples[0..n) in input order, group-prefetching each batch's
// cluster heads before the vertical scans resolve them. on_match receives
// (probe_tuple, build_tuple) like kernels::ProbeBatched.
template <typename Tracer, typename OnMatch>
void ProbeSimdBatch(const LinearProbeTable<Tracer>& table,
                    const Tuple* tuples, size_t n, OnMatch&& on_match,
                    Tracer& tracer) {
  (void)tracer;  // the vertical probe runs only on untraced builds
  constexpr size_t kLanes = 8;
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (size_t j = 0; j < kLanes; ++j) {
      table.PrefetchProbe(tuples[i + j].key);
    }
    for (size_t j = 0; j < kLanes; ++j) {
      const Tuple t = tuples[i + j];
      SimdProbeKey(table, t.key,
                   [&](const Tuple& match) { on_match(t, match); });
    }
  }
  for (; i < n; ++i) {
    const Tuple t = tuples[i];
    SimdProbeKey(table, t.key,
                 [&](const Tuple& match) { on_match(t, match); });
  }
}

// Tables whose storage the vertical probe can gather from: one flat
// power-of-two slot array. Only the open-addressing table qualifies; the
// bucket-chain family keeps the batched prefetch probe.
template <typename Table>
inline constexpr bool kHasFlatSlots = false;
template <typename Tracer>
inline constexpr bool kHasFlatSlots<LinearProbeTable<Tracer>> = true;

// The one probe entry point the algorithms call for a non-scalar plan:
// vertical SIMD when the plan resolved it and the table supports it,
// group-prefetched batching otherwise. Scalar plans keep their original
// per-site loops (they carry per-tuple tracer accesses this path omits).
template <typename Table, typename Tracer, typename OnMatch>
void ProbeDispatch(const Table& table, const Tuple* tuples, size_t n,
                   OnMatch&& on_match, Tracer& tracer,
                   const KernelPlan& plan) {
  if constexpr (kHasFlatSlots<Table>) {
    if (plan.simd_probe) {
      ProbeSimdBatch(table, tuples, n, std::forward<OnMatch>(on_match),
                     tracer);
      return;
    }
  }
  ProbeBatched(table, tuples, n, std::forward<OnMatch>(on_match), tracer);
}

}  // namespace kernels
}  // namespace iawj

#endif  // IAWJ_HASH_SIMD_PROBE_H_
