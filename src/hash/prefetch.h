// Software-prefetched, batched hash build and probe.
//
// A bucket-chain probe over a table bigger than L2 is one dependent cache
// miss per key: hash, load the bucket head, stall. The batched kernels
// break the dependency by working on a group of keys at a time — first
// issue a prefetch for every key's bucket head (the paper's Fig. 8/Table 5
// miss source), then resolve the probes; by the time the first chains are
// walked the later heads are in flight. Same trick on the build side for
// the insert target lines.
//
// The kernels call the tables' existing Insert/Probe, so match order per
// key, sink contents, and table layout are bit-identical to the scalar
// loops. Each table exposes PrefetchProbe/PrefetchInsert hints; the batch
// width covers the memory-level parallelism a core can keep in flight
// (~10 line-fill buffers) with headroom for chains.
#ifndef IAWJ_HASH_PREFETCH_H_
#define IAWJ_HASH_PREFETCH_H_

#include <cstddef>
#include <utility>

#include "src/common/tuple.h"

namespace iawj {
namespace kernels {

inline constexpr size_t kBatchWidth = 16;

// Probes tuples[0..n) against `table`, invoking on_match(probe_tuple,
// build_tuple) for every key match. Group-prefetches each batch's bucket
// heads before resolving the chains.
template <typename Table, typename Tracer, typename OnMatch>
void ProbeBatched(const Table& table, const Tuple* tuples, size_t n,
                  OnMatch&& on_match, Tracer& tracer) {
  size_t i = 0;
  for (; i + kBatchWidth <= n; i += kBatchWidth) {
    for (size_t j = 0; j < kBatchWidth; ++j) {
      table.PrefetchProbe(tuples[i + j].key);
    }
    for (size_t j = 0; j < kBatchWidth; ++j) {
      const Tuple t = tuples[i + j];
      table.Probe(
          t.key, [&](const auto& match) { on_match(t, match); }, tracer);
    }
  }
  for (; i < n; ++i) {
    const Tuple t = tuples[i];
    table.Probe(
        t.key, [&](const auto& match) { on_match(t, match); }, tracer);
  }
}

// Inserts tuples[0..n) into `table` in order, group-prefetching each
// batch's destination buckets (for write) ahead of the inserts.
template <typename Table, typename Tracer>
void InsertBatched(Table& table, const Tuple* tuples, size_t n,
                   Tracer& tracer) {
  size_t i = 0;
  for (; i + kBatchWidth <= n; i += kBatchWidth) {
    for (size_t j = 0; j < kBatchWidth; ++j) {
      table.PrefetchInsert(tuples[i + j].key);
    }
    for (size_t j = 0; j < kBatchWidth; ++j) {
      table.Insert(tuples[i + j], tracer);
    }
  }
  for (; i < n; ++i) {
    table.Insert(tuples[i], tracer);
  }
}

}  // namespace kernels
}  // namespace iawj

#endif  // IAWJ_HASH_PREFETCH_H_
