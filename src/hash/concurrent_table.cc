// ConcurrentBucketChainTable is header-only (templated on the tracer); this
// translation unit exists to type-check the header standalone.
#include "src/hash/concurrent_table.h"

namespace iawj {

// Force an instantiation so template errors surface at library build time.
template class ConcurrentBucketChainTable<NullTracer>;
template class ConcurrentBucketChainTable<SimTracer>;

}  // namespace iawj
