#include "src/partition/swwc.h"

#include <algorithm>
#include <cstring>
#include <memory>

#if defined(__AVX__)
#include <immintrin.h>
#endif

namespace iawj {

namespace {

inline uint32_t RadixShifted(uint32_t key, int shift, uint32_t mask) {
  return (key >> shift) & mask;
}

// One partition's staging buffer: exactly one cache line of tuples. While a
// line is partially filled, its LAST slot holds the partition's absolute
// output cursor (an index into `out`), so the hot loop touches exactly one
// cache line per tuple — no side arrays of fills or cursors competing for
// L1. The cursor slot is overwritten by the 8th staged tuple, at which point
// the line is full and flushed, and the incremented cursor is written back.
struct alignas(swwc::kCacheLineBytes) StagingLine {
  Tuple tuples[swwc::kTuplesPerLine];
};
static_assert(sizeof(StagingLine) == swwc::kCacheLineBytes);

inline uint64_t GetSlot(const StagingLine& line) {
  uint64_t slot;
  std::memcpy(&slot, &line.tuples[swwc::kTuplesPerLine - 1], sizeof(slot));
  return slot;
}

inline void SetSlot(StagingLine* line, uint64_t slot) {
  std::memcpy(&line->tuples[swwc::kTuplesPerLine - 1], &slot, sizeof(slot));
}

void ScatterScalar(const Tuple* chunk, size_t n, int shift, uint32_t mask,
                   uint64_t* cursors, Tuple* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint32_t p = RadixShifted(chunk[i].key, shift, mask);
    out[cursors[p]] = chunk[i];
    ++cursors[p];
  }
}

// Flushes a full staging line to the 64B-aligned destination with
// non-temporal stores: they bypass the cache hierarchy and skip the
// read-for-ownership a normal store to a cold line pays, which is where most
// of the scatter's memory traffic goes at high fan-out.
inline void FlushFullLine(Tuple* dst, const StagingLine& line) {
#if defined(__AVX__)
  const __m256i* src = reinterpret_cast<const __m256i*>(line.tuples);
  _mm256_stream_si256(reinterpret_cast<__m256i*>(dst),
                      _mm256_load_si256(src));
  _mm256_stream_si256(reinterpret_cast<__m256i*>(dst) + 1,
                      _mm256_load_si256(src + 1));
#else
  std::memcpy(dst, line.tuples, swwc::kCacheLineBytes);
#endif
}

// Reusable per-thread staging arena. A fresh heap allocation per scatter
// call would fault in up to 2MB of pages each time (the arena at kMaxBits),
// which costs more than the scatter itself at bench scales; scatters are
// hot-loop calls, so the arena persists for the thread's lifetime and only
// ever grows. Scratch, not tracked by mem:: (bounded at ~2MB/thread).
struct StagingArena {
  std::unique_ptr<StagingLine[]> lines;
  size_t capacity = 0;

  void Reserve(size_t parts) {
    if (parts <= capacity) return;
    lines.reset(new StagingLine[parts]);
    capacity = parts;
  }
};

StagingArena& ThreadArena() {
  static thread_local StagingArena arena;
  return arena;
}

// First flush of a partition may cover only the tail of its first output
// line (ramp-up): the cursor starts mid-line wherever the previous
// partition ended. `start` is nonzero exactly when the line being flushed is
// still the partition's starting line; bytes below `start` belong to a
// neighboring partition and are never written by this call.
inline uint32_t LineStart(uint64_t line_base, uint64_t cursor_begin) {
  return line_base == (cursor_begin & ~uint64_t{swwc::kTuplesPerLine - 1})
             ? static_cast<uint32_t>(cursor_begin &
                                     (swwc::kTuplesPerLine - 1))
             : 0;
}

}  // namespace

void RadixScatterSwwc(const Tuple* chunk, size_t n, int bits,
                      uint64_t* cursors, Tuple* out, int shift) {
  const uint32_t mask = (1u << bits) - 1;
  const size_t parts = size_t{1} << bits;
  // Scalar fallback where staging cannot pay off or the in-line cursor trick
  // cannot work: partition counts past the L1/L2 budget, inputs smaller than
  // the O(parts) staging setup, or an output base not on the 8-byte tuple
  // grid (operator new guarantees 16; this guards exotic callers).
  if (bits > swwc::kMaxBits || n < swwc::kTuplesPerLine || parts > n ||
      (reinterpret_cast<uintptr_t>(out) & (sizeof(Tuple) - 1)) != 0) {
    ScatterScalar(chunk, n, shift, mask, cursors, out);
    return;
  }

  // `out` is tuple-aligned but rarely line-aligned (glibc's large mmap'd
  // chunks sit 16 bytes past a page). Work in a line-aligned virtual frame:
  // bias every cursor by the base's offset within its cache line, so biased
  // cursor bits encode line position, and `vout + (biased & ~7)` is a real
  // 64B boundary. vout may point before the allocation; it is only ever
  // dereferenced at biased indices >= base_off, i.e. inside `out`.
  const uint64_t base_off =
      (reinterpret_cast<uintptr_t>(out) / sizeof(Tuple)) &
      (swwc::kTuplesPerLine - 1);
  Tuple* const vout = out - base_off;

  StagingArena& arena = ThreadArena();
  arena.Reserve(parts);
  StagingLine* const lines = arena.lines.get();
  // Seed each line's cursor slot. cursors[] itself stays untouched until the
  // drain, so cursors[p] still holds the partition's starting offset — which
  // the ramp-up flush needs to know how much of the first line it owns.
  for (size_t p = 0; p < parts; ++p) SetSlot(&lines[p], cursors[p] + base_off);

  constexpr uint64_t kIdxMask = swwc::kTuplesPerLine - 1;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t p = RadixShifted(chunk[i].key, shift, mask);
    StagingLine* line = &lines[p];
    const uint64_t c = GetSlot(*line);
    const uint32_t idx = static_cast<uint32_t>(c & kIdxMask);
    line->tuples[idx] = chunk[i];
    if (idx == kIdxMask) {
      // The tuple just stored reclaimed the cursor slot: line is full.
      const uint64_t line_base = c & ~kIdxMask;
      const uint32_t start = LineStart(line_base, cursors[p] + base_off);
      if (start == 0) {
        FlushFullLine(vout + line_base, *line);
      } else {
        std::memcpy(vout + line_base + start, line->tuples + start,
                    (swwc::kTuplesPerLine - start) * sizeof(Tuple));
      }
    }
    SetSlot(line, c + 1);
  }

  // Drain: every partition's last, partially filled line goes out with plain
  // stores, and the caller-visible cursor advances to its end state.
  for (size_t p = 0; p < parts; ++p) {
    const uint64_t c = GetSlot(lines[p]);
    const uint64_t line_base = c & ~kIdxMask;
    const uint32_t start = LineStart(line_base, cursors[p] + base_off);
    const uint32_t end = static_cast<uint32_t>(c & kIdxMask);
    if (end > start) {
      std::memcpy(vout + line_base + start, lines[p].tuples + start,
                  (end - start) * sizeof(Tuple));
    }
    cursors[p] = c - base_off;
  }
#if defined(__AVX__)
  // Streaming stores are weakly ordered; fence so the scatter is visible to
  // whoever synchronizes with this thread next (PRJ's post-scatter barrier).
  _mm_sfence();
#endif
}

}  // namespace iawj
