#include "src/partition/range.h"

#include <algorithm>

#include "src/common/tuple.h"

namespace iawj {

ChunkRange ChunkForThread(size_t n, int t, int num_threads) {
  const size_t begin = n * static_cast<size_t>(t) / num_threads;
  const size_t end = n * (static_cast<size_t>(t) + 1) / num_threads;
  return ChunkRange{begin, end};
}

size_t LowerBoundKey(const uint64_t* sorted, size_t n, uint32_t key) {
  const uint64_t needle = static_cast<uint64_t>(key) << 32;
  return static_cast<size_t>(
      std::lower_bound(sorted, sorted + n, needle) - sorted);
}

std::vector<size_t> KeyAlignedSplits(const uint64_t* sorted, size_t n,
                                     int parts) {
  std::vector<size_t> splits(parts + 1, n);
  splits[0] = 0;
  for (int p = 1; p < parts; ++p) {
    size_t pos = n * static_cast<size_t>(p) / parts;
    // Advance past the duplicate-key run the target position landed in.
    while (pos < n && pos > 0 &&
           PackedKey(sorted[pos]) == PackedKey(sorted[pos - 1])) {
      ++pos;
    }
    splits[p] = std::max(pos, splits[p - 1]);
  }
  splits[parts] = n;
  return splits;
}

}  // namespace iawj
