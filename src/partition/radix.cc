#include "src/partition/radix.h"

namespace iawj {

void RadixHistogram(const Tuple* chunk, size_t n, int bits, uint64_t* hist) {
  for (size_t i = 0; i < n; ++i) {
    ++hist[RadixOf(chunk[i].key, bits)];
  }
}

}  // namespace iawj
