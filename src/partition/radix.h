// Radix partitioning (PRJ's first phase, paper §3.1 / Figure 18).
//
// Tuples scatter into 2^bits contiguous partitions by the low `bits` of the
// join key — the same content-based physical replication the parallel radix
// join uses to make each partition cache-resident. The building blocks are
// exposed separately (histogram / prefix / scatter) so PRJ can run them
// across threads with its own barriers, and so the number-of-radix-bits
// sweep can time partitioning in isolation.
#ifndef IAWJ_PARTITION_RADIX_H_
#define IAWJ_PARTITION_RADIX_H_

#include <cstdint>
#include <vector>

#include "src/common/tuple.h"
#include "src/partition/swwc.h"
#include "src/profiling/cache_sim.h"

namespace iawj {

inline uint32_t RadixOf(uint32_t key, int bits) {
  return key & ((1u << bits) - 1);
}

// Counts tuples per partition into hist (size 2^bits, zeroed by the caller).
void RadixHistogram(const Tuple* chunk, size_t n, int bits, uint64_t* hist);

// Scatters tuples to out using per-partition write cursors (advanced as a
// side effect). The tracer sees both the input scan and the scattered writes.
template <typename Tracer>
void RadixScatter(const Tuple* chunk, size_t n, int bits, uint64_t* cursors,
                  Tuple* out, Tracer& tracer) {
  for (size_t i = 0; i < n; ++i) {
    tracer.Access(&chunk[i], sizeof(Tuple));
    const uint32_t p = RadixOf(chunk[i].key, bits);
    out[cursors[p]] = chunk[i];
    tracer.Access(&out[cursors[p]], sizeof(Tuple));
    ++cursors[p];
  }
}

// Kernel-dispatched scatter: routes to the software write-combining kernel
// (partition/swwc.h) when requested, with two hard fallbacks to the scalar
// loop — tracing builds (the cache simulator must see the algorithm's own
// access stream, not the staging buffers') and partition counts past the
// SWWC staging budget (handled inside RadixScatterSwwc). Output bytes and
// cursor end-state are identical either way.
template <typename Tracer>
void RadixScatterKernel(const Tuple* chunk, size_t n, int bits,
                        uint64_t* cursors, Tuple* out, Tracer& tracer,
                        bool use_swwc, int shift = 0) {
  if constexpr (!Tracer::kEnabled) {
    if (use_swwc) {
      RadixScatterSwwc(chunk, n, bits, cursors, out, shift);
      return;
    }
  }
  if (shift == 0) {
    RadixScatter(chunk, n, bits, cursors, out, tracer);
    return;
  }
  const uint32_t mask = (1u << bits) - 1;
  for (size_t i = 0; i < n; ++i) {
    tracer.Access(&chunk[i], sizeof(Tuple));
    const uint32_t p = (chunk[i].key >> shift) & mask;
    out[cursors[p]] = chunk[i];
    tracer.Access(&out[cursors[p]], sizeof(Tuple));
    ++cursors[p];
  }
}

// Convenience single-threaded partition: fills out (size n) and offsets
// (size 2^bits + 1). `use_swwc` opts into the write-combining scatter
// kernel (ignored, with a scalar fallback, for tracing builds).
template <typename Tracer>
void RadixPartitionSingle(const Tuple* input, size_t n, int bits, Tuple* out,
                          std::vector<uint64_t>* offsets, Tracer& tracer,
                          bool use_swwc = false) {
  const size_t parts = size_t{1} << bits;
  std::vector<uint64_t> hist(parts, 0);
  RadixHistogram(input, n, bits, hist.data());
  offsets->assign(parts + 1, 0);
  for (size_t p = 0; p < parts; ++p) (*offsets)[p + 1] = (*offsets)[p] + hist[p];
  std::vector<uint64_t> cursors(offsets->begin(), offsets->end() - 1);
  RadixScatterKernel(input, n, bits, cursors.data(), out, tracer, use_swwc);
}

}  // namespace iawj

#endif  // IAWJ_PARTITION_RADIX_H_
