// Software write-combining radix scatter (Balkesen et al.'s PRO/PRA trick).
//
// The plain RadixScatter issues one random cache-line write per tuple: at 14
// radix bits that is 16K live output lines (plus as many TLB entries), so
// nearly every write misses and — worse — pays a read-for-ownership to pull
// the line in before overwriting it. SWWC instead stages tuples in
// per-partition cache-line-sized buffers that stay L1-resident (64 B x
// #partitions) and flushes a full line at a time with non-temporal streaming
// stores, which skip the RFO entirely. Output bytes, output order, and
// cursor end-state are identical to the scalar kernel — the staging only
// batches the writes.
//
// The kernel is intentionally trace-free: the SimTracer path (Fig. 8 cache
// simulation) always takes the scalar loop so the simulated access stream
// keeps matching the algorithm the paper profiles (see common/kernels.h).
#ifndef IAWJ_PARTITION_SWWC_H_
#define IAWJ_PARTITION_SWWC_H_

#include <cstddef>
#include <cstdint>

#include "src/common/tuple.h"

namespace iawj {

namespace swwc {

inline constexpr size_t kCacheLineBytes = 64;
inline constexpr size_t kTuplesPerLine = kCacheLineBytes / sizeof(Tuple);

// Above this many radix bits the staging array (64 B per partition) would
// blow the L1/L2 budget that makes write-combining profitable (and cost
// megabytes per worker), so the scatter falls back to the scalar loop.
inline constexpr int kMaxBits = 15;

}  // namespace swwc

// Drop-in replacement for RadixScatter (partition/radix.h) minus the tracer:
// scatters chunk[0..n) to out by radix ((key >> shift) & (2^bits - 1)),
// advancing the per-partition cursors. `cursors` indexes into `out` exactly
// as in the scalar kernel; on return every cursor holds the same end value
// the scalar kernel would produce. Falls back to the scalar loop internally
// when bits > swwc::kMaxBits.
void RadixScatterSwwc(const Tuple* chunk, size_t n, int bits,
                      uint64_t* cursors, Tuple* out, int shift = 0);

}  // namespace iawj

#endif  // IAWJ_PARTITION_SWWC_H_
