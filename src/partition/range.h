// Equisized chunking and key-aligned range splitting for the sort joins.
//
// MWay/MPass partition inputs into equisized per-thread chunks for local
// sorting, and parallelize the final merge join by splitting the globally
// sorted arrays at key boundaries so no duplicate-key span straddles two
// threads.
#ifndef IAWJ_PARTITION_RANGE_H_
#define IAWJ_PARTITION_RANGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace iawj {

struct ChunkRange {
  size_t begin;
  size_t end;

  size_t size() const { return end - begin; }
};

// The t-th of num_threads equisized chunks of [0, n).
ChunkRange ChunkForThread(size_t n, int t, int num_threads);

// Index of the first element of the sorted packed array whose key is >= key.
size_t LowerBoundKey(const uint64_t* sorted, size_t n, uint32_t key);

// Splits a sorted packed array into `parts` contiguous ranges whose
// boundaries never fall inside a run of equal keys. Returns parts+1 split
// positions (some ranges may be empty under heavy duplication).
std::vector<size_t> KeyAlignedSplits(const uint64_t* sorted, size_t n,
                                     int parts);

}  // namespace iawj

#endif  // IAWJ_PARTITION_RANGE_H_
