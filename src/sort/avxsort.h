// Sorting kernels for 64-bit packed tuples (the paper's `avxsort` stand-in).
//
// Tuples sort by (key, ts), which — given Tuple's memory layout — is plain
// unsigned order on the 64-bit image, so the kernels operate on uint64.
//
// Two code paths implement the same mergesort:
//  - vectorized (Options::use_simd == true): base blocks sorted by a
//    branchless bitonic sorting network (data-parallel compare-exchange
//    passes the compiler turns into AVX2 min/max+blend sequences) and runs
//    combined with a branchless two-pointer merge;
//  - scalar (use_simd == false): std::sort on base blocks and a conventional
//    branchy merge.
//
// Toggling use_simd at run time reproduces the paper's Figure 21 ablation
// ("altering AVX instructions") without rebuilding.
#ifndef IAWJ_SORT_AVXSORT_H_
#define IAWJ_SORT_AVXSORT_H_

#include <cstddef>
#include <cstdint>

#include "src/common/tuple.h"

namespace iawj::sort {

struct Options {
  bool use_simd = true;
};

// Sorts n packed tuples ascending.
void SortPacked(uint64_t* data, size_t n, const Options& options);

// Sorts n tuples by (key, ts).
inline void SortTuples(Tuple* data, size_t n, const Options& options) {
  SortPacked(reinterpret_cast<uint64_t*>(data), n, options);
}

// Merges sorted runs a and b into out (out must not alias inputs).
void MergePacked(const uint64_t* a, size_t na, const uint64_t* b, size_t nb,
                 uint64_t* out, const Options& options);

}  // namespace iawj::sort

#endif  // IAWJ_SORT_AVXSORT_H_
