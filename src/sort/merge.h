// Run-combination strategies for the sort-based joins.
//
// MWay (Chhugani et al.) combines all sorted runs at once with a multiway
// merge; MPass (Balkesen et al.) instead applies successive two-way merge
// passes. Both are provided here over packed 64-bit tuples, plus a variant
// that carries a run id per element — PMJ's merge phase needs run provenance
// to emit only cross-run matches.
#ifndef IAWJ_SORT_MERGE_H_
#define IAWJ_SORT_MERGE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/sort/avxsort.h"

namespace iawj::sort {

struct Run {
  const uint64_t* data;
  size_t size;
};

// Loser-tree multiway merge of sorted runs into out (sized sum of run sizes).
void MultiwayMerge(const std::vector<Run>& runs, uint64_t* out);

// log2(#runs) passes of pairwise merging. `options` picks the merge kernel.
void MultiPassMerge(const std::vector<Run>& runs, uint64_t* out,
                    const Options& options);

// Multiway merge that also emits the source run index of every element.
// out_values/out_runs are both sized to the total element count.
void MultiwayMergeTagged(const std::vector<Run>& runs, uint64_t* out_values,
                         uint32_t* out_runs);

}  // namespace iawj::sort

#endif  // IAWJ_SORT_MERGE_H_
