#include "src/sort/merge.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"
#include "src/memory/tracker.h"

namespace iawj::sort {

namespace {

// A classic loser tree over K run cursors. Internal nodes 1..K-1 store the
// loser of the match played there; leaf i lives at implicit position K+i.
// K is small (thread or run count), so the O(log K) replay per element
// dominates pointer chasing nicely.
class LoserTree {
 public:
  explicit LoserTree(const std::vector<Run>& runs)
      : runs_(runs), k_(runs.size()) {
    cursors_.assign(k_, 0);
    tree_.assign(std::max<size_t>(k_, 1), 0);
    winner_ = k_ == 1 ? 0 : InitWinner(1);
  }

  bool Empty() const { return Exhausted(winner_); }

  // Pops the smallest head element; run_index receives its source run.
  uint64_t Pop(uint32_t* run_index) {
    const size_t run = winner_;
    const uint64_t value = runs_[run].data[cursors_[run]];
    ++cursors_[run];
    *run_index = static_cast<uint32_t>(run);
    Replay(run);
    return value;
  }

 private:
  uint64_t KeyOf(size_t run) const {
    return runs_[run].data[cursors_[run]];
  }

  bool Exhausted(size_t run) const { return cursors_[run] >= runs_[run].size; }

  // Whether run a wins (advances) against run b. Exhausted runs lose to
  // everything; among exhausted runs the choice is immaterial.
  bool Beats(size_t a, size_t b) const {
    if (Exhausted(b)) return true;
    if (Exhausted(a)) return false;
    return KeyOf(a) <= KeyOf(b);
  }

  // Recursively seats losers in the subtree under `node`, returning its
  // winner. Children of internal node n are 2n and 2n+1; positions >= k_
  // are leaves for run (position - k_).
  size_t InitWinner(size_t node) {
    if (node >= k_) return node - k_;
    const size_t w1 = InitWinner(2 * node);
    const size_t w2 = InitWinner(2 * node + 1);
    if (Beats(w1, w2)) {
      tree_[node] = w2;
      return w1;
    }
    tree_[node] = w1;
    return w2;
  }

  // After popping from `run`, replays it against the losers on its
  // leaf-to-root path; the surviving run is the new winner.
  void Replay(size_t run) {
    size_t current = run;
    for (size_t node = (run + k_) / 2; node >= 1; node /= 2) {
      if (!Beats(current, tree_[node])) std::swap(current, tree_[node]);
    }
    winner_ = current;
  }

  const std::vector<Run>& runs_;
  size_t k_;
  std::vector<size_t> cursors_;
  std::vector<size_t> tree_;  // loser run index per internal node
  size_t winner_ = 0;
};

size_t TotalSize(const std::vector<Run>& runs) {
  size_t total = 0;
  for (const Run& r : runs) total += r.size;
  return total;
}

}  // namespace

void MultiwayMerge(const std::vector<Run>& runs, uint64_t* out) {
  if (runs.empty()) return;
  if (runs.size() == 1) {
    std::memcpy(out, runs[0].data, runs[0].size * sizeof(uint64_t));
    return;
  }
  LoserTree tree(runs);
  size_t k = 0;
  uint32_t run_index;
  while (!tree.Empty()) out[k++] = tree.Pop(&run_index);
}

void MultiwayMergeTagged(const std::vector<Run>& runs, uint64_t* out_values,
                         uint32_t* out_runs) {
  if (runs.empty()) return;
  LoserTree tree(runs);
  size_t k = 0;
  while (!tree.Empty()) {
    out_values[k] = tree.Pop(&out_runs[k]);
    ++k;
  }
}

void MultiPassMerge(const std::vector<Run>& runs, uint64_t* out,
                    const Options& options) {
  if (runs.empty()) return;
  const size_t total = TotalSize(runs);
  if (runs.size() == 1) {
    std::memcpy(out, runs[0].data, total * sizeof(uint64_t));
    return;
  }

  // Copy run contents into a working buffer laid out back to back, then merge
  // adjacent run pairs until one run remains, ping-ponging with `out`.
  mem::TrackedBuffer<uint64_t> scratch(total);
  struct Segment {
    size_t offset;
    size_t size;
  };
  std::vector<Segment> segments;
  segments.reserve(runs.size());
  {
    size_t offset = 0;
    for (const Run& r : runs) {
      std::memcpy(scratch.data() + offset, r.data, r.size * sizeof(uint64_t));
      segments.push_back({offset, r.size});
      offset += r.size;
    }
  }

  uint64_t* src = scratch.data();
  uint64_t* dst = out;
  while (segments.size() > 1) {
    std::vector<Segment> next;
    next.reserve((segments.size() + 1) / 2);
    for (size_t i = 0; i + 1 < segments.size(); i += 2) {
      const Segment& a = segments[i];
      const Segment& b = segments[i + 1];
      IAWJ_CHECK_EQ(a.offset + a.size, b.offset);
      MergePacked(src + a.offset, a.size, src + b.offset, b.size,
                  dst + a.offset, options);
      next.push_back({a.offset, a.size + b.size});
    }
    if (segments.size() % 2 == 1) {
      const Segment& last = segments.back();
      std::memcpy(dst + last.offset, src + last.offset,
                  last.size * sizeof(uint64_t));
      next.push_back(last);
    }
    segments = std::move(next);
    std::swap(src, dst);
  }
  if (src != out) std::memcpy(out, src, total * sizeof(uint64_t));
}

}  // namespace iawj::sort
