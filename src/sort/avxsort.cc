#include "src/sort/avxsort.h"

#include <algorithm>
#include <cstring>
#include <vector>

#ifdef __AVX2__
#include <immintrin.h>
#endif

#include "src/memory/tracker.h"

namespace iawj::sort {

namespace {

constexpr size_t kBlock = 64;  // base sorting-network block size (power of 2)

// Branchless compare-exchange; with -O3 -march=native GCC emits SIMD
// compare/blend sequences for the strided loops below.
inline void CompareExchange(uint64_t& a, uint64_t& b) {
  const uint64_t lo = a < b ? a : b;
  const uint64_t hi = a < b ? b : a;
  a = lo;
  b = hi;
}

// Branchless 4-element sorting network (5 comparators).
inline void SortQuad(uint64_t* d) {
  CompareExchange(d[0], d[1]);
  CompareExchange(d[2], d[3]);
  CompareExchange(d[0], d[2]);
  CompareExchange(d[1], d[3]);
  CompareExchange(d[1], d[2]);
}

// Sorts every aligned quad; the tail (< 4 elements) uses a tiny network.
void SortQuads(uint64_t* data, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) SortQuad(data + i);
  const size_t tail = n - i;
  if (tail >= 2) CompareExchange(data[i], data[i + 1]);
  if (tail == 3) {
    CompareExchange(data[i + 1], data[i + 2]);
    CompareExchange(data[i], data[i + 1]);
  }
}

// Branchless two-pointer merge (compiles to cmov; no mispredicted branches on
// random keys).
void MergeBranchless(const uint64_t* a, size_t na, const uint64_t* b,
                     size_t nb, uint64_t* out) {
  size_t i = 0, j = 0, k = 0;
  while (i < na && j < nb) {
    const uint64_t va = a[i];
    const uint64_t vb = b[j];
    const bool take_a = va <= vb;
    out[k++] = take_a ? va : vb;
    i += take_a;
    j += !take_a;
  }
  if (i < na) std::memcpy(out + k, a + i, (na - i) * sizeof(uint64_t));
  if (j < nb) std::memcpy(out + k, b + j, (nb - j) * sizeof(uint64_t));
}

void MergeBranchy(const uint64_t* a, size_t na, const uint64_t* b, size_t nb,
                  uint64_t* out) {
  std::merge(a, a + na, b, b + nb, out);
}

#ifdef __AVX2__

// --- 4-wide AVX2 bitonic merge kernel (Inoue-style) -----------------------
//
// Packed tuples are key<<32|ts with keys < 2^31, so values are positive as
// int64 and the signed 64-bit compare is order-correct.

inline __m256i Min64(__m256i a, __m256i b) {
  return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b));
}

inline __m256i Max64(__m256i a, __m256i b) {
  return _mm256_blendv_epi8(b, a, _mm256_cmpgt_epi64(a, b));
}

// Sorts a bitonic sequence of 4 elements ascending within the register.
inline __m256i BitonicSort4(__m256i v) {
  // Compare-exchange at distance 2: lanes (0,2) and (1,3).
  __m256i p = _mm256_permute4x64_epi64(v, _MM_SHUFFLE(1, 0, 3, 2));
  __m256i lo = Min64(v, p);
  __m256i hi = Max64(v, p);
  v = _mm256_blend_epi32(lo, hi, 0b11110000);
  // Compare-exchange at distance 1: lanes (0,1) and (2,3).
  p = _mm256_permute4x64_epi64(v, _MM_SHUFFLE(2, 3, 0, 1));
  lo = Min64(v, p);
  hi = Max64(v, p);
  return _mm256_blend_epi32(lo, hi, 0b11001100);
}

// Merges two sorted 4-vectors; a receives the lowest 4, b the highest 4.
inline void BitonicMerge4(__m256i& a, __m256i& b) {
  const __m256i rb = _mm256_permute4x64_epi64(b, _MM_SHUFFLE(0, 1, 2, 3));
  const __m256i lo = Min64(a, rb);
  const __m256i hi = Max64(a, rb);
  a = BitonicSort4(lo);
  b = BitonicSort4(hi);
}

// Vectorized two-run merge: keeps the 8 smallest in-flight values in two
// registers, emitting 4 per iteration and refilling from whichever run has
// the smaller head. Tails finish with the branchless scalar merge.
void MergeAvx2(const uint64_t* a, size_t na, const uint64_t* b, size_t nb,
               uint64_t* out) {
  if (na < 8 || nb < 8) {
    MergeBranchless(a, na, b, nb, out);
    return;
  }
  size_t ia = 4, ib = 4, k = 0;
  __m256i va =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  __m256i vb =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  while (ia + 4 <= na && ib + 4 <= nb) {
    BitonicMerge4(va, vb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k), va);
    k += 4;
    if (a[ia] <= b[ib]) {
      va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + ia));
      ia += 4;
    } else {
      va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + ib));
      ib += 4;
    }
  }
  // Eight values remain in flight (the freshly refilled va and the highs in
  // vb) plus both input tails. Merge the registers into a sorted spill of 8,
  // then finish with an allocation-free three-way branchless merge — a true
  // three-way, since in-flight values from one run may exceed the other
  // run's tail head.
  BitonicMerge4(va, vb);
  alignas(32) uint64_t spill[8];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(spill), va);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(spill + 4), vb);
  size_t is = 0, j = ib;
  size_t i = ia;
  while (i < na || j < nb || is < 8) {
    const uint64_t xa = i < na ? a[i] : ~0ull;
    const uint64_t xb = j < nb ? b[j] : ~0ull;
    const uint64_t xs = is < 8 ? spill[is] : ~0ull;
    const uint64_t lo_ab = xa < xb ? xa : xb;
    const uint64_t lo = lo_ab < xs ? lo_ab : xs;
    out[k++] = lo;
    i += (lo == xa);
    j += (lo != xa) & (lo == xb);
    is += (lo != xa) & (lo != xb);
  }
}

#endif  // __AVX2__

void SortBaseBlocksScalar(uint64_t* data, size_t n) {
  for (size_t offset = 0; offset < n; offset += kBlock) {
    const size_t len = std::min(kBlock, n - offset);
    std::sort(data + offset, data + offset + len);
  }
}

}  // namespace

void MergePacked(const uint64_t* a, size_t na, const uint64_t* b, size_t nb,
                 uint64_t* out, const Options& options) {
  if (options.use_simd) {
#ifdef __AVX2__
    MergeAvx2(a, na, b, nb, out);
#else
    MergeBranchless(a, na, b, nb, out);
#endif
  } else {
    MergeBranchy(a, na, b, nb, out);
  }
}

void SortPacked(uint64_t* data, size_t n, const Options& options) {
  if (n <= 1) return;
  // Vectorized path: branchless quad networks feed the (AVX2) merge kernels
  // from width 4 up; scalar path: std::sort on blocks + std::merge up.
  const size_t base = options.use_simd ? 4 : kBlock;
  if (options.use_simd) {
    SortQuads(data, n);
  } else {
    SortBaseBlocksScalar(data, n);
  }
  if (n <= base) return;

  // Bottom-up mergesort over the sorted base blocks, ping-ponging between the
  // input array and a tracked scratch buffer.
  mem::TrackedBuffer<uint64_t> scratch(n);
  uint64_t* src = data;
  uint64_t* dst = scratch.data();
  for (size_t width = base; width < n; width <<= 1) {
    for (size_t lo = 0; lo < n; lo += 2 * width) {
      const size_t mid = std::min(lo + width, n);
      const size_t hi = std::min(lo + 2 * width, n);
      MergePacked(src + lo, mid - lo, src + mid, hi - mid, dst + lo, options);
    }
    std::swap(src, dst);
  }
  if (src != data) std::memcpy(data, src, n * sizeof(uint64_t));
}

}  // namespace iawj::sort
