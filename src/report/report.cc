#include "src/report/report.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "src/common/logging.h"

namespace iawj::report {

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  IAWJ_CHECK(!columns_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  IAWJ_CHECK_EQ(cells.size(), columns_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::ToText() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) {
        os << std::string(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    os << "\n";
  };
  emit(columns_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

namespace {
std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::ToCsv() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << CsvEscape(cells[c]);
      if (c + 1 < cells.size()) os << ",";
    }
    os << "\n";
  };
  emit(columns_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

Status Table::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::FailedPrecondition("cannot open " + path + " for writing");
  }
  out << ToCsv();
  return out.good() ? Status::Ok()
                    : Status::FailedPrecondition("write to " + path +
                                                 " failed");
}

std::string CsvDir() {
  const char* dir = std::getenv("IAWJ_CSV_DIR");
  return dir == nullptr ? "" : dir;
}

void MaybeWriteCsv(const Table& table, const std::string& name) {
  const std::string dir = CsvDir();
  if (dir.empty()) return;
  const std::string path = dir + "/" + name + ".csv";
  const Status status = table.WriteCsv(path);
  if (!status.ok()) {
    IAWJ_LOG(Warning) << "CSV emission failed: " << status.ToString();
  } else {
    std::printf("# wrote %s\n", path.c_str());
  }
}

std::string GnuplotScript(const std::string& csv_name, const Table& table,
                          const std::string& key_column,
                          const std::string& series_column,
                          const std::string& value_column) {
  const auto column_index = [&](const std::string& name) {
    for (size_t c = 0; c < table.columns().size(); ++c) {
      if (table.columns()[c] == name) return static_cast<int>(c) + 1;  // 1-based
    }
    IAWJ_LOG(Fatal) << "no column " << name;
    return 0;
  };
  const int key = column_index(key_column);
  const int series = column_index(series_column);
  const int value = column_index(value_column);

  std::set<std::string> series_values;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    series_values.insert(table.row(i)[series - 1]);
  }

  std::ostringstream os;
  os << "set datafile separator ','\n"
     << "set key outside\n"
     << "set xlabel '" << key_column << "'\n"
     << "set ylabel '" << value_column << "'\n"
     << "plot ";
  bool first = true;
  for (const std::string& sv : series_values) {
    if (!first) os << ", \\\n     ";
    first = false;
    os << "'" << csv_name << ".csv' using " << key << ":((stringcolumn("
       << series << ") eq '" << sv << "') ? column(" << value
       << ") : 1/0) with linespoints title '" << sv << "'";
  }
  os << "\n";
  return os.str();
}

}  // namespace iawj::report
