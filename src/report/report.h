// Result reporting: aligned console tables, CSV emission, and gnuplot
// script generation, so every bench can both print the paper's rows and
// leave machine-readable artifacts behind.
//
// Benches write CSVs when IAWJ_CSV_DIR is set; the gnuplot emitter produces
// a ready-to-run script per figure referencing those CSVs.
#ifndef IAWJ_REPORT_REPORT_H_
#define IAWJ_REPORT_REPORT_H_

#include <string>
#include <vector>

#include "src/common/status.h"

namespace iawj::report {

// An in-memory table: named columns, string cells. Cheap and good enough
// for experiment-sized outputs.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  // Appends a row; the cell count must match the column count.
  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double value, int precision = 2);

  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return columns_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::string>& row(size_t i) const { return rows_[i]; }

  // Renders an aligned, human-readable table.
  std::string ToText() const;

  // Renders RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  std::string ToCsv() const;

  // Writes the CSV to path.
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Returns the CSV output directory (IAWJ_CSV_DIR) or "" when disabled.
std::string CsvDir();

// If IAWJ_CSV_DIR is set, writes table as <dir>/<name>.csv; no-op otherwise.
void MaybeWriteCsv(const Table& table, const std::string& name);

// Emits a gnuplot script that plots `value_column` against `key_column`
// with one line per distinct value of `series_column`, reading
// <name>.csv. Returns the script text.
std::string GnuplotScript(const std::string& csv_name,
                          const Table& table,
                          const std::string& key_column,
                          const std::string& series_column,
                          const std::string& value_column);

}  // namespace iawj::report

#endif  // IAWJ_REPORT_REPORT_H_
