#include "src/datagen/real_world.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/zipf.h"

namespace iawj {

namespace {

uint32_t ScatterKeyId(uint64_t id) {
  return static_cast<uint32_t>((id * 2654435761ull) & 0x7fffffffull);
}

// Draws n keys over a shared domain with the given Zipf skew.
void FillKeys(std::vector<Tuple>* tuples, uint64_t domain, double zipf_key,
              uint64_t seed) {
  ZipfGenerator zipf(std::max<uint64_t>(domain, 1), zipf_key, seed);
  for (auto& t : *tuples) t.key = ScatterKeyId(zipf.Next());
}

// Uniform arrivals at `rate` tuples/ms.
void FillUniformTs(std::vector<Tuple>* tuples, uint32_t window_ms) {
  const double step =
      static_cast<double>(window_ms) / std::max<size_t>(tuples->size(), 1);
  for (size_t i = 0; i < tuples->size(); ++i) {
    (*tuples)[i].ts = static_cast<uint32_t>(static_cast<double>(i) * step);
  }
}

// Spiky arrivals (Figure 3a): a uniform base load plus bursts where many
// tuples share the same time slot.
void FillSpikyTs(std::vector<Tuple>* tuples, uint32_t window_ms, int spikes,
                 double spike_fraction, Rng* rng) {
  const size_t n = tuples->size();
  const size_t burst = static_cast<size_t>(spike_fraction * n);
  std::vector<uint32_t> spike_times(spikes);
  for (auto& ts : spike_times) {
    ts = static_cast<uint32_t>(rng->NextBounded(window_ms));
  }
  for (size_t i = 0; i < n; ++i) {
    if (i < burst) {
      (*tuples)[i].ts = spike_times[rng->NextBounded(spike_times.size())];
    } else {
      (*tuples)[i].ts = static_cast<uint32_t>(rng->NextBounded(window_ms));
    }
  }
}

}  // namespace

std::string RealWorkloadName(RealWorkload which) {
  switch (which) {
    case RealWorkload::kStock:
      return "Stock";
    case RealWorkload::kRovio:
      return "Rovio";
    case RealWorkload::kYsb:
      return "YSB";
    case RealWorkload::kDebs:
      return "DEBS";
  }
  return "?";
}

Status GenerateRealWorld(const RealWorldSpec& spec, Workload* workload) {
  // The negated comparisons also reject NaN.
  if (!(spec.scale > 0.0) || !std::isfinite(spec.scale)) {
    return Status::InvalidArgument(
        "real-world spec: scale must be positive and finite");
  }
  if (spec.window_ms < 1) {
    return Status::InvalidArgument(
        "real-world spec: window_ms must be >= 1");
  }
  Workload& w = *workload;
  w.name = RealWorkloadName(spec.which);
  Rng rng(spec.seed);
  const uint32_t window = spec.window_ms;
  const auto scaled = [&](double x) {
    return std::max<uint64_t>(1, static_cast<uint64_t>(x * spec.scale));
  };

  switch (spec.which) {
    case RealWorkload::kStock: {
      // Trades (R) join quotes (S) on stock id. Low rates (61 and 77
      // tuples/ms), moderate duplication (~68/~79), visible key skew, and
      // spiky arrivals.
      const uint64_t n_r = scaled(61.0 * window);
      const uint64_t n_s = scaled(77.0 * window);
      const uint64_t domain =
          std::max<uint64_t>(1, std::max(n_r / 68, n_s / 79));
      std::vector<Tuple> r(n_r), s(n_s);
      FillKeys(&r, domain, 0.112 * 4, spec.seed ^ 1);  // amplified: see note
      FillKeys(&s, domain, 0.158 * 4, spec.seed ^ 2);
      // Table 3's skew_key values are fitted exponents on the real data;
      // generating with those tiny thetas would be indistinguishable from
      // uniform, so we amplify moderately to keep Stock "the more skewed
      // workload" (§4.2.1 point iii) while staying far below Micro's skew
      // sweep range.
      FillSpikyTs(&r, window, /*spikes=*/8, /*spike_fraction=*/0.5, &rng);
      FillSpikyTs(&s, window, /*spikes=*/8, /*spike_fraction=*/0.5, &rng);
      w.r = MakeStream(std::move(r));
      w.s = MakeStream(std::move(s));
      break;
    }
    case RealWorkload::kRovio: {
      // Advertisements (R) join purchases (S) with very heavy duplication
      // (dupe ~ 17960 at paper scale) and steady arrivals (Figure 3b).
      const uint64_t n_r = scaled(3000.0 * window);
      const uint64_t n_s = scaled(3000.0 * window);
      // Preserve the paper's tiny key *domain* (|R|/dupe ~ 167 ads at paper
      // scale); duplication then scales with the stream size but stays far
      // above every other workload, which is the property the analysis uses.
      const uint64_t domain = 167;
      std::vector<Tuple> r(n_r), s(n_s);
      FillKeys(&r, domain, 0.042, spec.seed ^ 3);
      FillKeys(&s, domain, 0.042, spec.seed ^ 4);
      FillUniformTs(&r, window);
      FillUniformTs(&s, window);
      w.r = MakeStream(std::move(r));
      w.s = MakeStream(std::move(s));
      break;
    }
    case RealWorkload::kYsb: {
      // Campaigns table (R, static, 1000 unique keys) joins the ad stream
      // (S, high arrival rate, dupe(S) ~ 10^3 per campaign).
      const uint64_t n_r = std::max<uint64_t>(16, scaled(1000));
      const uint64_t n_s = scaled(10000.0 * window);
      std::vector<Tuple> r(n_r), s(n_s);
      for (uint64_t i = 0; i < n_r; ++i) {
        r[i].key = ScatterKeyId(i);  // unique campaign ids (dupe(R)=1)
        r[i].ts = 0;                 // table at rest
      }
      ZipfGenerator zipf(n_r, 0.033, spec.seed ^ 5);
      for (auto& t : s) t.key = ScatterKeyId(zipf.Next());
      FillUniformTs(&s, window);
      w.r = MakeStream(std::move(r));
      w.s = MakeStream(std::move(s));
      break;
    }
    case RealWorkload::kDebs: {
      // Posts (R) and comments (S) at rest: window length zero, infinite
      // arrival rate, high duplication on both sides.
      const uint64_t n_r = scaled(1e5);
      const uint64_t n_s = scaled(1e6);
      const uint64_t domain_r = std::max<uint64_t>(1, n_r / 173);
      const uint64_t domain_s = std::max<uint64_t>(1, n_s / 1115);
      std::vector<Tuple> r(n_r), s(n_s);
      FillKeys(&r, domain_r, 0.003, spec.seed ^ 6);
      FillKeys(&s, std::max(domain_r, domain_s), 0.011, spec.seed ^ 7);
      for (auto& t : r) t.ts = 0;
      for (auto& t : s) t.ts = 0;
      w.r = MakeStream(std::move(r));
      w.s = MakeStream(std::move(s));
      w.suggested_clock = Clock::Mode::kInstant;
      break;
    }
  }
  return Status::Ok();
}

Workload GenerateRealWorld(const RealWorldSpec& spec) {
  Workload workload;
  const Status status = GenerateRealWorld(spec, &workload);
  IAWJ_CHECK(status.ok()) << status.ToString();
  return workload;
}

}  // namespace iawj
