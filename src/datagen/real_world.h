// Synthetic re-creations of the paper's four real-world workloads.
//
// The original datasets (Shanghai stock exchange, Rovio ad/purchase logs,
// YSB generator output, DEBS'16 social network) are not redistributable, so
// each generator reproduces the workload *characteristics* published in the
// paper's Table 3 and Figure 3 — arrival rates, key-duplication levels, key
// skew, timestamp spikes, and at-rest vs streaming nature — which are the
// properties the study's analysis attributes its findings to. A global scale
// factor shrinks sizes and rates proportionally for small machines while
// preserving tuples-per-key and spike structure.
#ifndef IAWJ_DATAGEN_REAL_WORLD_H_
#define IAWJ_DATAGEN_REAL_WORLD_H_

#include <cstdint>
#include <string>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/stream/stream.h"

namespace iawj {

enum class RealWorkload { kStock, kRovio, kYsb, kDebs };

inline constexpr RealWorkload kAllRealWorkloads[] = {
    RealWorkload::kStock, RealWorkload::kRovio, RealWorkload::kYsb,
    RealWorkload::kDebs};

std::string RealWorkloadName(RealWorkload which);

struct RealWorldSpec {
  RealWorkload which = RealWorkload::kStock;
  // Scales stream sizes/rates (1.0 == paper scale; benches default smaller).
  double scale = 1.0;
  uint32_t window_ms = 1000;
  uint64_t seed = 7;
};

struct Workload {
  std::string name;
  Stream r;
  Stream s;
  // At-rest workloads (DEBS; YSB's campaigns side) want the instant clock.
  Clock::Mode suggested_clock = Clock::Mode::kRealTime;
};

// Validating form: rejects a non-positive / non-finite scale or a zero
// window with InvalidArgument. Entry point for user-supplied specs.
Status GenerateRealWorld(const RealWorldSpec& spec, Workload* workload);

// Convenience form for internally constructed specs; aborts if malformed.
Workload GenerateRealWorld(const RealWorldSpec& spec);

}  // namespace iawj

#endif  // IAWJ_DATAGEN_REAL_WORLD_H_
