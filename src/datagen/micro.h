// The `Micro` synthetic workload (paper §4.2.1, based on Kim et al.).
//
// Every knob from the paper's Table 1 is tunable: arrival rate per stream,
// window length, average key duplication, Zipf key skew and Zipf timestamp
// skew. Key ids map through an odd-multiplier bijection on [0, 2^31) so keys
// are scattered (no accidental radix friendliness) yet collision-free, and R
// and S share the key domain so every key can match across streams.
#ifndef IAWJ_DATAGEN_MICRO_H_
#define IAWJ_DATAGEN_MICRO_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/stream/stream.h"

namespace iawj {

struct MicroSpec {
  // Arrival rates in tuples per msec (paper sweeps 1600..25600).
  uint64_t rate_r = 1600;
  uint64_t rate_s = 1600;
  uint32_t window_ms = 1000;

  // Average number of duplicates per key within one stream (dupe).
  double dupe = 1.0;
  // Zipf exponent of the key distribution (0 == unique/uniform usage).
  double zipf_key = 0.0;
  // Per-side override for the key skew; negative means "use zipf_key".
  // The §5.4 key-skewness sweep skews R while keeping S near-uniform so the
  // output cardinality stays linear in the input size.
  double zipf_key_s = -1.0;
  // Zipf exponent of the arrival-time distribution (0 == uniform arrivals;
  // higher values skew tuples toward early timestamps, as in §5.4).
  double zipf_ts = 0.0;

  // When nonzero, override rate*window sizing (the §5.5 at-rest studies fix
  // |R| and |S| explicitly).
  uint64_t size_r = 0;
  uint64_t size_s = 0;

  uint64_t seed = 42;
};

struct MicroWorkload {
  Stream r;
  Stream s;
};

// Validating form: rejects malformed specs (dupe < 1, zero-size streams,
// window of 0, negative skews, absurd sizes) with InvalidArgument instead of
// aborting the process. This is the entry point for user-supplied specs
// (CLI flags, config files).
Status GenerateMicro(const MicroSpec& spec, MicroWorkload* workload);

// Convenience form for internally constructed specs (benches, tests):
// aborts on a malformed spec.
MicroWorkload GenerateMicro(const MicroSpec& spec);

}  // namespace iawj

#endif  // IAWJ_DATAGEN_MICRO_H_
