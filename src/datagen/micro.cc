#include "src/datagen/micro.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/zipf.h"

namespace iawj {

namespace {

// Bijection on [0, 2^31): multiplication by an odd constant is invertible
// modulo any power of two, so distinct key ids stay distinct.
uint32_t ScatterKeyId(uint64_t id) {
  return static_cast<uint32_t>((id * 2654435761ull) & 0x7fffffffull);
}

std::vector<Tuple> GenerateSide(uint64_t n, uint64_t unique_keys,
                                double zipf_key, const MicroSpec& spec,
                                uint64_t seed) {
  std::vector<Tuple> tuples(n);

  // Keys. zipf_key == 0 with dupe == 1 assigns each key id exactly once
  // (the paper's "unique key set"); otherwise keys draw from the shared
  // domain with the requested skew. The non-Zipf assignments are shuffled:
  // without it the key sequence is an arithmetic progression (sequential
  // ids through the bijection), which branch predictors and comparison
  // sorts exploit — real generators (Kim et al.) emit random key order.
  if (zipf_key == 0) {
    for (uint64_t i = 0; i < n; ++i) {
      tuples[i].key =
          ScatterKeyId(spec.dupe <= 1.0 ? i : i % unique_keys);
    }
    Rng rng(seed ^ 0x51a4full);
    for (uint64_t i = n; i > 1; --i) {
      std::swap(tuples[i - 1].key, tuples[rng.NextBounded(i)].key);
    }
  } else {
    ZipfGenerator zipf(unique_keys, zipf_key, seed ^ 0x5eedull);
    for (uint64_t i = 0; i < n; ++i) {
      tuples[i].key = ScatterKeyId(zipf.Next());
    }
  }

  // Timestamps. Uniform arrivals space tuples at the arrival rate; skewed
  // arrivals cluster tuples toward the start of the window (§5.4, Fig. 12).
  const uint64_t window = std::max<uint32_t>(spec.window_ms, 1);
  if (spec.zipf_ts == 0) {
    const double rate = static_cast<double>(n) / static_cast<double>(window);
    for (uint64_t i = 0; i < n; ++i) {
      tuples[i].ts =
          static_cast<uint32_t>(static_cast<double>(i) / std::max(rate, 1e-9));
    }
  } else {
    ZipfGenerator zipf(window, spec.zipf_ts, seed ^ 0x715ull);
    for (uint64_t i = 0; i < n; ++i) {
      tuples[i].ts = static_cast<uint32_t>(zipf.Next());
    }
  }
  return tuples;
}

}  // namespace

Status GenerateMicro(const MicroSpec& spec, MicroWorkload* workload) {
  // dupe < 1 would demand a key domain larger than the stream; the negated
  // comparison also rejects NaN.
  if (!(spec.dupe >= 1.0)) {
    return Status::InvalidArgument("micro spec: dupe must be >= 1");
  }
  if (spec.window_ms < 1) {
    return Status::InvalidArgument("micro spec: window_ms must be >= 1");
  }
  if (!(spec.zipf_key >= 0.0) || !(spec.zipf_ts >= 0.0)) {
    return Status::InvalidArgument(
        "micro spec: zipf exponents must be >= 0");
  }
  const uint64_t n_r = spec.size_r != 0
                           ? spec.size_r
                           : spec.rate_r * spec.window_ms;
  const uint64_t n_s = spec.size_s != 0
                           ? spec.size_s
                           : spec.rate_s * spec.window_ms;
  if (n_r == 0 || n_s == 0) {
    return Status::InvalidArgument(
        "micro spec: both streams must be non-empty (rate * window or "
        "explicit size)");
  }
  // 2^31 tuples per stream (16 GiB) is far past anything the study sweeps;
  // refuse rather than letting a typo'd rate OOM the machine.
  constexpr uint64_t kMaxTuples = uint64_t{1} << 31;
  if (n_r > kMaxTuples || n_s > kMaxTuples) {
    return Status::InvalidArgument(
        "micro spec: stream size exceeds 2^31 tuples");
  }

  // Shared key domain so R and S tuples can match.
  const uint64_t unique_keys = std::max<uint64_t>(
      1, static_cast<uint64_t>(static_cast<double>(std::max(n_r, n_s)) /
                               spec.dupe));

  const double zipf_s = spec.zipf_key_s < 0 ? spec.zipf_key : spec.zipf_key_s;
  workload->r = MakeStream(
      GenerateSide(n_r, unique_keys, spec.zipf_key, spec, spec.seed));
  workload->s = MakeStream(
      GenerateSide(n_s, unique_keys, zipf_s, spec, spec.seed ^ 0xabcdefull));
  return Status::Ok();
}

MicroWorkload GenerateMicro(const MicroSpec& spec) {
  MicroWorkload workload;
  const Status status = GenerateMicro(spec, &workload);
  IAWJ_CHECK(status.ok()) << status.ToString();
  return workload;
}

}  // namespace iawj
