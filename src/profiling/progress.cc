#include "src/profiling/progress.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace iawj {

int ProgressRecorder::BucketIndex(double elapsed_ms) {
  const uint64_t ms = static_cast<uint64_t>(std::max(elapsed_ms, 0.0));
  if (ms < kSubBuckets) return static_cast<int>(ms);
  const int octave = 63 - std::countl_zero(ms);
  const int shift = octave - 3;  // log2(kSubBuckets)
  const int sub = static_cast<int>((ms >> shift) & (kSubBuckets - 1));
  return std::min((octave - 2) * kSubBuckets + sub, kNumBuckets - 1);
}

double ProgressRecorder::BucketUpperMs(int index) {
  if (index < kSubBuckets) return static_cast<double>(index + 1);
  const int octave = index / kSubBuckets + 2;
  const int sub = index % kSubBuckets;
  const double base = std::ldexp(1.0, octave);
  const double step = base / kSubBuckets;
  return base + (sub + 1) * step;
}

void ProgressRecorder::Record(double elapsed_ms) {
  ++buckets_[BucketIndex(elapsed_ms)];
  ++total_;
}

void ProgressRecorder::Merge(const ProgressRecorder& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  total_ += other.total_;
}

std::vector<std::pair<double, double>> ProgressRecorder::Curve() const {
  std::vector<std::pair<double, double>> curve;
  if (total_ == 0) return curve;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    seen += buckets_[i];
    curve.emplace_back(BucketUpperMs(i),
                       static_cast<double>(seen) / static_cast<double>(total_));
  }
  return curve;
}

double ProgressRecorder::TimeToFractionMs(double fraction) const {
  if (total_ == 0) return 0;
  const double target = fraction * static_cast<double>(total_);
  double seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += static_cast<double>(buckets_[i]);
    if (seen >= target) return BucketUpperMs(i);
  }
  return BucketUpperMs(kNumBuckets - 1);
}

}  // namespace iawj
