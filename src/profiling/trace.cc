#include "src/profiling/trace.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>

#include "src/common/json.h"
#include "src/common/logging.h"

namespace iawj::trace {

namespace {

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadLog>> logs;
  // Interned names need pointer stability; deque never moves elements.
  std::deque<std::string> interned;
  int next_tid = 1;
  int force_state = -1;  // -1 env-driven, 0 forced off, 1 forced on
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: used during atexit
  return *registry;
}

void FlushAtExit() {
  const char* path = std::getenv("IAWJ_TRACE_FILE");
  if (path == nullptr || path[0] == '\0') return;
  if (TotalEventCount() == 0) return;
  const Status status = WriteChromeTrace(path);
  if (status.ok()) {
    std::fprintf(stderr, "# wrote trace %s\n", path);
  } else {
    std::fprintf(stderr, "# trace write failed: %s\n",
                 status.ToString().c_str());
  }
}

void InitFromEnvOnce() {
  static const bool initialized = [] {
    if (const char* env = std::getenv("IAWJ_TRACE_MIN_SPAN_US");
        env != nullptr) {
      char* end = nullptr;
      const double us = std::strtod(env, &end);
      if (end != env && *end == '\0' && us >= 0) {
        g_min_span_ns.store(static_cast<uint64_t>(us * 1000.0),
                            std::memory_order_relaxed);
      }
    }
    std::atexit(FlushAtExit);
    return true;
  }();
  (void)initialized;
}

}  // namespace

bool Enabled() {
  Registry& registry = GetRegistry();
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    if (registry.force_state >= 0) return registry.force_state == 1;
  }
  const char* path = std::getenv("IAWJ_TRACE_FILE");
  if (path == nullptr || path[0] == '\0') return false;
  InitFromEnvOnce();
  return true;
}

const char* Intern(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const std::string& existing : registry.interned) {
    if (existing == name) return existing.c_str();
  }
  registry.interned.push_back(name);
  return registry.interned.back().c_str();
}

ScopedThreadTrace::ScopedThreadTrace(const std::string& thread_name,
                                     int core) {
  if (t_log != nullptr || !Enabled()) return;
  auto log = std::make_unique<ThreadLog>();
  log->name = thread_name;
  log->core = core;
  ThreadLog* raw = log.get();
  Registry& registry = GetRegistry();
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    raw->tid = registry.next_tid++;
    registry.logs.push_back(std::move(log));
  }
  t_log = raw;
  installed_ = true;
}

ScopedThreadTrace::~ScopedThreadTrace() {
  if (!installed_) return;
  ThreadLog* log = t_log;
  // Close anything left open so serialized traces always pair up.
  while (log != nullptr && !log->open_spans.empty()) EndSpan();
  t_log = nullptr;
}

std::string SerializeChromeTrace() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);

  const int64_t pid = static_cast<int64_t>(getpid());
  json::Writer w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();

  w.BeginObject()
      .Field("name", "process_name")
      .Field("ph", "M")
      .Field("pid", pid)
      .Field("tid", int64_t{0})
      .Key("args")
      .BeginObject()
      .Field("name", "iawj")
      .EndObject()
      .EndObject();

  for (const auto& log : registry.logs) {
    std::string display = log->name;
    if (log->core >= 0) display += " [core " + std::to_string(log->core) + "]";
    w.BeginObject()
        .Field("name", "thread_name")
        .Field("ph", "M")
        .Field("pid", pid)
        .Field("tid", int64_t{log->tid})
        .Key("args")
        .BeginObject()
        .Field("name", display)
        .EndObject()
        .EndObject();
    w.BeginObject()
        .Field("name", "thread_sort_index")
        .Field("ph", "M")
        .Field("pid", pid)
        .Field("tid", int64_t{log->tid})
        .Key("args")
        .BeginObject()
        .Field("sort_index", int64_t{log->tid})
        .EndObject()
        .EndObject();
    if (log->core >= 0) {
      w.BeginObject()
          .Field("name", "iawj_pinned_core")
          .Field("ph", "M")
          .Field("pid", pid)
          .Field("tid", int64_t{log->tid})
          .Key("args")
          .BeginObject()
          .Field("core", int64_t{log->core})
          .EndObject()
          .EndObject();
    }

    for (const Event& e : log->events) {
      const double ts_us = static_cast<double>(e.ts_ns) / 1000.0;
      w.BeginObject().Field("name", e.name);
      switch (e.type) {
        case EventType::kBegin:
          w.Field("ph", "B");
          break;
        case EventType::kEnd:
          w.Field("ph", "E");
          break;
        case EventType::kInstant:
          w.Field("ph", "i").Field("s", "t");
          break;
        case EventType::kCounter:
          w.Field("ph", "C");
          break;
      }
      w.Field("pid", pid).Field("tid", int64_t{log->tid}).Field("ts", ts_us);
      if (e.type == EventType::kCounter) {
        w.Key("args").BeginObject().Field("value", e.value).EndObject();
      } else if (e.has_value) {
        w.Key("args").BeginObject().Field("v", e.value).EndObject();
      }
      w.EndObject();
    }
  }

  w.EndArray();
  w.Field("displayTimeUnit", "ms");
  w.EndObject();
  return w.str();
}

Status WriteChromeTrace(const std::string& path) {
  const std::string text = SerializeChromeTrace();
  std::ofstream out(path);
  if (!out) {
    return Status::FailedPrecondition("cannot open " + path + " for writing");
  }
  out << text;
  return out.good()
             ? Status::Ok()
             : Status::FailedPrecondition("write to " + path + " failed");
}

size_t TotalEventCount() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  size_t total = 0;
  for (const auto& log : registry.logs) total += log->events.size();
  return total;
}

void ForceEnableForTesting(bool enabled) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.force_state = enabled ? 1 : 0;
}

void ResetForTesting() {
  IAWJ_CHECK(t_log == nullptr)
      << "ResetForTesting with a recorder installed on this thread";
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.logs.clear();
  registry.interned.clear();
  registry.next_tid = 1;
  registry.force_state = -1;
}

}  // namespace iawj::trace
