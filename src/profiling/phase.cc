#include "src/profiling/phase.h"

namespace iawj {

std::string_view PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kWait:
      return "wait";
    case Phase::kPartition:
      return "partition";
    case Phase::kBuild:
      return "build";
    case Phase::kSort:
      return "sort";
    case Phase::kMerge:
      return "merge";
    case Phase::kProbe:
      return "probe";
    case Phase::kOther:
      return "others";
  }
  return "unknown";
}

}  // namespace iawj
