#include "src/profiling/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>

#include "src/common/json.h"

namespace iawj::metrics {
namespace {

// The registry proper. Instruments are heap-allocated and never freed —
// handles must stay valid for the process lifetime (hot paths cache them),
// and a static-destruction-order race against worker threads would be
// worse than the bounded leak. ResetForTesting swaps in a fresh registry.
struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry*& GlobalRegistry() {
  static Registry* registry = new Registry;
  return registry;
}

// True when `name` is already bound to a different instrument kind.
// Caller holds the registry mutex.
bool NameTaken(const Registry& registry, const std::string& name,
               Sample::Kind kind) {
  if (kind != Sample::Kind::kCounter && registry.counters.count(name)) {
    return true;
  }
  if (kind != Sample::Kind::kGauge && registry.gauges.count(name)) {
    return true;
  }
  if (kind != Sample::Kind::kHistogram && registry.histograms.count(name)) {
    return true;
  }
  return false;
}

void WarnKindClash(const std::string& name) {
  std::fprintf(stderr,
               "iawj metrics: \"%s\" already registered as a different "
               "instrument kind; returning nullptr\n",
               name.c_str());
}

std::atomic<int> g_next_shard{0};

}  // namespace

bool EnabledSlow() {
  const char* dir = std::getenv("IAWJ_METRICS_DIR");
  const int resolved = (dir != nullptr && dir[0] != '\0') ? 1 : 0;
  int expected = -1;
  g_enabled.compare_exchange_strong(expected, resolved,
                                    std::memory_order_relaxed);
  return g_enabled.load(std::memory_order_relaxed) != 0;
}

void ForceEnable(bool enabled) {
  g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

namespace internal {

int ThisThreadShard() {
  thread_local int shard =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace internal

Counter* GetCounter(const std::string& name) {
  Registry& registry = *GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (NameTaken(registry, name, Sample::Kind::kCounter)) {
    WarnKindClash(name);
    return nullptr;
  }
  auto& slot = registry.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* GetGauge(const std::string& name) {
  Registry& registry = *GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (NameTaken(registry, name, Sample::Kind::kGauge)) {
    WarnKindClash(name);
    return nullptr;
  }
  auto& slot = registry.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* GetHistogram(const std::string& name) {
  Registry& registry = *GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (NameTaken(registry, name, Sample::Kind::kHistogram)) {
    WarnKindClash(name);
    return nullptr;
  }
  auto& slot = registry.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::vector<Sample> Snapshot() {
  Registry& registry = *GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<Sample> samples;
  samples.reserve(registry.counters.size() + registry.gauges.size() +
                  registry.histograms.size());
  for (const auto& [name, counter] : registry.counters) {
    Sample sample;
    sample.name = name;
    sample.kind = Sample::Kind::kCounter;
    sample.value = static_cast<double>(counter->Value());
    samples.push_back(std::move(sample));
  }
  for (const auto& [name, gauge] : registry.gauges) {
    Sample sample;
    sample.name = name;
    sample.kind = Sample::Kind::kGauge;
    sample.value = static_cast<double>(gauge->Value());
    samples.push_back(std::move(sample));
  }
  for (const auto& [name, histogram] : registry.histograms) {
    const LatencyHistogram merged = histogram->Merged();
    Sample sample;
    sample.name = name;
    sample.kind = Sample::Kind::kHistogram;
    sample.count = merged.count();
    sample.mean = merged.MeanMs();
    sample.p50 = merged.QuantileMs(0.50);
    sample.p95 = merged.QuantileMs(0.95);
    samples.push_back(std::move(sample));
  }
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return samples;
}

void WriteJson(json::Writer* writer) {
  writer->BeginObject();
  if (!Enabled()) {
    writer->Field("enabled", false);
    writer->EndObject();
    return;
  }
  writer->Field("enabled", true);
  const std::vector<Sample> samples = Snapshot();
  writer->Key("counters").BeginObject();
  for (const Sample& sample : samples) {
    if (sample.kind != Sample::Kind::kCounter) continue;
    writer->Field(sample.name, static_cast<uint64_t>(sample.value));
  }
  writer->EndObject();
  writer->Key("gauges").BeginObject();
  for (const Sample& sample : samples) {
    if (sample.kind != Sample::Kind::kGauge) continue;
    writer->Field(sample.name, static_cast<int64_t>(sample.value));
  }
  writer->EndObject();
  writer->Key("histograms").BeginObject();
  for (const Sample& sample : samples) {
    if (sample.kind != Sample::Kind::kHistogram) continue;
    writer->Key(sample.name)
        .BeginObject()
        .Field("count", sample.count)
        .Field("mean", sample.mean)
        .Field("p50", sample.p50)
        .Field("p95", sample.p95)
        .EndObject();
  }
  writer->EndObject();
  writer->EndObject();
}

std::string SnapshotJson() {
  json::Writer writer;
  WriteJson(&writer);
  return writer.str();
}

void ResetForTesting() {
  // Old instruments are leaked deliberately: a cached handle from a prior
  // test must stay dereferenceable even if stale.
  GlobalRegistry() = new Registry;
  g_enabled.store(-1, std::memory_order_relaxed);
}

}  // namespace iawj::metrics
