// Progressiveness recording (paper §4.1, Figure 6).
//
// Progressiveness is the cumulative fraction of matches delivered as a
// function of elapsed stream time. Workers bump a log-scale time bucket per
// match; the curve is reconstructed afterwards, bounded-memory regardless of
// match count.
#ifndef IAWJ_PROFILING_PROGRESS_H_
#define IAWJ_PROFILING_PROGRESS_H_

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

namespace iawj {

class ProgressRecorder {
 public:
  // 48 octaves x 8 sub-buckets over milliseconds: covers [1ms, ~10^9 ms).
  static constexpr int kOctaves = 48;
  static constexpr int kSubBuckets = 8;
  static constexpr int kNumBuckets = kOctaves * kSubBuckets;

  ProgressRecorder() { buckets_.fill(0); }

  void Record(double elapsed_ms);
  void Merge(const ProgressRecorder& other);

  uint64_t total() const { return total_; }

  // (elapsed_ms, cumulative_fraction) samples at non-empty buckets.
  std::vector<std::pair<double, double>> Curve() const;

  // Earliest elapsed time (ms) by which the given fraction of all matches had
  // been produced (e.g., 0.5 for the paper's "first 50% of matches").
  double TimeToFractionMs(double fraction) const;

 private:
  static int BucketIndex(double elapsed_ms);
  static double BucketUpperMs(int index);

  std::array<uint64_t, kNumBuckets> buckets_;
  uint64_t total_ = 0;
};

}  // namespace iawj

#endif  // IAWJ_PROFILING_PROGRESS_H_
