#include "src/profiling/cache_sim.h"

#include "src/common/bits.h"
#include "src/common/logging.h"

namespace iawj {

CacheLevel::CacheLevel(const CacheLevelConfig& config)
    : line_bits_(Log2Floor(config.line_bytes)), ways_(config.ways) {
  IAWJ_CHECK(IsPow2(config.line_bytes));
  const uint64_t lines = config.size_bytes / config.line_bytes;
  const uint64_t sets = lines / config.ways;
  IAWJ_CHECK(IsPow2(sets));
  set_mask_ = sets - 1;
  tags_.assign(sets * config.ways, ~0ull);
  lru_.assign(sets * config.ways, 0);
}

bool CacheLevel::Access(uint64_t addr) {
  ++accesses_;
  ++tick_;
  const uint64_t line = addr >> line_bits_;
  const uint64_t set = line & set_mask_;
  const uint64_t base = set * static_cast<uint64_t>(ways_);
  int victim = 0;
  uint64_t oldest = ~0ull;
  for (int w = 0; w < ways_; ++w) {
    if (tags_[base + w] == line) {
      lru_[base + w] = tick_;
      return true;
    }
    if (lru_[base + w] < oldest) {
      oldest = lru_[base + w];
      victim = w;
    }
  }
  ++misses_;
  tags_[base + victim] = line;
  lru_[base + victim] = tick_;
  return false;
}

CacheCounters& CacheCounters::operator+=(const CacheCounters& other) {
  accesses += other.accesses;
  l1_misses += other.l1_misses;
  l2_misses += other.l2_misses;
  l3_misses += other.l3_misses;
  tlb_misses += other.tlb_misses;
  return *this;
}

CacheSim::CacheSim(const CacheLevelConfig& l1, const CacheLevelConfig& l2,
                   const CacheLevelConfig& l3, int tlb_entries, int tlb_ways)
    : l1_(l1),
      l2_(l2),
      l3_(l3),
      tlb_({static_cast<uint64_t>(tlb_entries) * 4096, tlb_ways, 4096}) {}

CacheSim CacheSim::XeonGold6126() {
  return CacheSim({32 * 1024, 8, 64}, {1024 * 1024, 16, 64},
                  {16 * 1024 * 1024, 16, 64},
                  /*tlb_entries=*/64, /*tlb_ways=*/4);
}

void CacheSim::Access(const void* addr, uint64_t bytes) {
  const uint64_t start = reinterpret_cast<uint64_t>(addr);
  const uint64_t first_line = start >> 6;
  const uint64_t last_line = (start + (bytes == 0 ? 0 : bytes - 1)) >> 6;
  CacheCounters& c = counters_[phase_];
  for (uint64_t line = first_line; line <= last_line; ++line) {
    const uint64_t a = line << 6;
    ++c.accesses;
    if (!tlb_.Access(a)) ++c.tlb_misses;
    if (l1_.Access(a)) continue;
    ++c.l1_misses;
    if (l2_.Access(a)) continue;
    ++c.l2_misses;
    if (l3_.Access(a)) continue;
    ++c.l3_misses;
  }
}

CacheCounters CacheSim::Total() const {
  CacheCounters total;
  for (const auto& c : counters_) total += c;
  return total;
}

}  // namespace iawj
