// Chrome-trace span recorder: per-thread, append-only, lock-free on the hot
// path (ISSUE 1 tentpole).
//
// Worker threads install a recorder with ScopedThreadTrace; BeginSpan /
// EndSpan / Instant / Counter then append fixed-size events to the calling
// thread's private buffer — a thread_local pointer test plus a vector
// push_back, no locks, no allocation beyond vector growth. When tracing is
// disabled (no recorder installed) every emit call is a single thread-local
// load and branch, so instrumented code paths cost nothing in production.
//
// Serialization produces the Chrome Trace Event JSON format, loadable in
// chrome://tracing and https://ui.perfetto.dev. Threads are named, carry a
// stable sort index, and record the core they were pinned to. The trace is
// written automatically at process exit when IAWJ_TRACE_FILE names the
// output path; IAWJ_TRACE_MIN_SPAN_US (default 1) drops leaf spans shorter
// than the threshold so tuple-granular eager loops don't explode the file.
#ifndef IAWJ_PROFILING_TRACE_H_
#define IAWJ_PROFILING_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace iawj::trace {

enum class EventType : uint8_t { kBegin, kEnd, kInstant, kCounter };

// 24 bytes; name must outlive serialization (string literal or Intern()).
struct Event {
  const char* name;
  uint64_t ts_ns;  // since the process-wide trace epoch
  double value;    // counter sample or instant argument (kHasValue set)
  EventType type;
  bool has_value;
};

// One thread's private event buffer. Created by ScopedThreadTrace, owned by
// the global registry until serialization; only its creating thread appends.
struct ThreadLog {
  std::vector<Event> events;
  std::vector<uint32_t> open_spans;  // event indices of unclosed Begins
  std::string name;
  int tid = 0;
  int core = -1;  // pinned core, or -1 when unpinned
};

// Hot-path state: non-null only while a recorder is installed on this thread.
inline thread_local ThreadLog* t_log = nullptr;

// Leaf spans shorter than this are dropped at EndSpan time (coalescing), and
// PhaseStopwatch timelines only switch spans at this granularity. The 100 µs
// default keeps full bench-suite traces in chrome://tracing-loadable range;
// override with IAWJ_TRACE_MIN_SPAN_US (microseconds).
inline std::atomic<uint64_t> g_min_span_ns{100 * 1000};

inline bool Active() { return t_log != nullptr; }

// Nanoseconds since the trace epoch (process start, first use).
inline uint64_t NowNs() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

inline void BeginSpan(const char* name) {
  ThreadLog* log = t_log;
  if (log == nullptr) return;
  log->open_spans.push_back(static_cast<uint32_t>(log->events.size()));
  log->events.push_back(Event{name, NowNs(), 0, EventType::kBegin, false});
}

// Ends the innermost open span. Leaf spans (no nested events) shorter than
// the min-span threshold are dropped entirely, keeping tuple-granular phase
// flapping from flooding the buffer while longer spans stay exact.
inline void EndSpan() {
  ThreadLog* log = t_log;
  if (log == nullptr || log->open_spans.empty()) return;
  const uint32_t begin_index = log->open_spans.back();
  log->open_spans.pop_back();
  const uint64_t now = NowNs();
  const Event& begin = log->events[begin_index];
  if (begin_index + 1 == log->events.size() &&
      now - begin.ts_ns < g_min_span_ns.load(std::memory_order_relaxed)) {
    log->events.pop_back();
    return;
  }
  log->events.push_back(Event{begin.name, now, 0, EventType::kEnd, false});
}

inline void Instant(const char* name) {
  ThreadLog* log = t_log;
  if (log == nullptr) return;
  log->events.push_back(Event{name, NowNs(), 0, EventType::kInstant, false});
}

inline void Instant(const char* name, double value) {
  ThreadLog* log = t_log;
  if (log == nullptr) return;
  log->events.push_back(Event{name, NowNs(), value, EventType::kInstant, true});
}

inline void Counter(const char* name, double value) {
  ThreadLog* log = t_log;
  if (log == nullptr) return;
  log->events.push_back(Event{name, NowNs(), value, EventType::kCounter, true});
}

// Whether tracing is configured for this process (IAWJ_TRACE_FILE set, or
// forced by a test). Cheap but not hot-path-cheap; call per run, not per
// tuple.
bool Enabled();

// Returns a stable, process-lifetime copy of `name` for use as an event
// name. Takes a lock; intern outside hot loops.
const char* Intern(const std::string& name);

// Installs a fresh per-thread recorder for the current scope. No-op (and
// zero-cost at destruction) when tracing is disabled or the thread already
// has a recorder installed — nesting keeps the outer one. The destructor
// closes any still-open spans and uninstalls; the buffer itself stays in the
// registry for serialization.
class ScopedThreadTrace {
 public:
  explicit ScopedThreadTrace(const std::string& thread_name, int core = -1);
  ~ScopedThreadTrace();

  ScopedThreadTrace(const ScopedThreadTrace&) = delete;
  ScopedThreadTrace& operator=(const ScopedThreadTrace&) = delete;

  bool installed() const { return installed_; }

 private:
  bool installed_ = false;
};

// Serializes every recorded thread buffer as Chrome Trace Event JSON. Must
// not race live recording threads; call after workers are joined.
std::string SerializeChromeTrace();

// SerializeChromeTrace to a file.
Status WriteChromeTrace(const std::string& path);

// Total events currently buffered across all threads (diagnostics/tests).
size_t TotalEventCount();

// --- Test hooks -----------------------------------------------------------

// Overrides Enabled() regardless of IAWJ_TRACE_FILE. Pass reset=true on
// ResetForTesting to return to env-driven behavior.
void ForceEnableForTesting(bool enabled);

// Drops all recorded buffers and interned names; the calling thread must not
// have a recorder installed.
void ResetForTesting();

}  // namespace iawj::trace

#endif  // IAWJ_PROFILING_TRACE_H_
