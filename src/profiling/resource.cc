#include "src/profiling/resource.h"

#include <sys/resource.h>

#include <chrono>

#include "src/memory/tracker.h"

namespace iawj {

ResourceSampler::ResourceSampler(double period_ms) : period_ms_(period_ms) {}

ResourceSampler::~ResourceSampler() { Stop(); }

double ResourceSampler::ProcessCpuTimeMs() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  const auto to_ms = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) * 1000.0 +
           static_cast<double>(tv.tv_usec) / 1000.0;
  };
  return to_ms(usage.ru_utime) + to_ms(usage.ru_stime);
}

void ResourceSampler::Start() {
  samples_.clear();
  start_wall_ = std::chrono::steady_clock::now();
  start_cpu_ms_ = ProcessCpuTimeMs();
  running_.store(true);
  thread_ = std::thread(&ResourceSampler::Loop, this);
}

void ResourceSampler::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

void ResourceSampler::Loop() {
  while (running_.load(std::memory_order_relaxed)) {
    const double elapsed =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_wall_)
            .count();
    samples_.push_back(ResourceSample{elapsed, mem::CurrentBytes(),
                                      ProcessCpuTimeMs() - start_cpu_ms_});
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(period_ms_));
  }
}

double ResourceSampler::CpuUtilization(int num_threads) const {
  if (samples_.empty() || num_threads <= 0) return 0;
  const ResourceSample& last = samples_.back();
  if (last.elapsed_ms <= 0) return 0;
  return last.cpu_time_ms / (last.elapsed_ms * num_threads);
}

}  // namespace iawj
