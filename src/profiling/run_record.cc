#include "src/profiling/run_record.h"

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <mutex>

#include "src/common/fault.h"
#include "src/common/json.h"
#include "src/common/logging.h"
#include "src/profiling/metrics.h"

namespace iawj {

namespace {

std::string UtcTimestamp(bool compact) {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf),
                compact ? "%Y%m%dT%H%M%S" : "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

std::string SanitizeForFilename(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '-' || ch == '_';
    out += ok ? ch : '_';
  }
  return out.empty() ? std::string("run") : out;
}

const char* ClockModeName(Clock::Mode mode) {
  return mode == Clock::Mode::kRealTime ? "realtime" : "instant";
}

const char* HashTableKindName(HashTableKind kind) {
  return kind == HashTableKind::kLinearProbe ? "linear_probe" : "bucket_chain";
}

}  // namespace

std::string GitDescribeStamp() {
  static std::once_flag once;
  static std::string stamp;
  std::call_once(once, [] {
    stamp = "unknown";
    std::FILE* pipe =
        popen("git describe --always --dirty --tags 2>/dev/null", "r");
    if (pipe == nullptr) return;
    char buf[128];
    std::string out;
    while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
    const int rc = pclose(pipe);
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
      out.pop_back();
    }
    if (rc == 0 && !out.empty()) stamp = out;
  });
  return stamp;
}

std::string RunRecordJson(const RunResult& result, const JoinSpec& spec,
                          const RunRecordContext& context) {
  json::Writer w;
  w.BeginObject();
  // v2: adds status/status_code/status_message (failed runs are recorded
  // too, carrying whatever partial metrics the workers produced).
  // v3: adds the `recovery` block (supervised retries, fallbacks, skipped
  // windows, shed load) whenever the run was supervised; unsupervised runs
  // omit the block entirely.
  // v4: adds spec.scheduler / spec.scheduler_resolved / spec.morsel_size and
  // the `scheduler` block (per-worker morsel/steal counters) for morsel
  // runs; static runs omit the block.
  // v5: adds the always-present `pmu` block (hardware counter deltas per
  // phase when measured; {available: false, reason} otherwise) and the
  // always-present `metrics` block (live registry snapshot, or
  // {enabled: false}).
  // v6: adds the `spill` block (partition residency split, run-file bytes
  // and pages, recursion depth, BNL fallbacks, spill wall time) whenever
  // the run staged partitions on disk; in-memory runs omit the block.
  // v7: adds spec.disorder_slack_ms / spec.allowed_lateness_ms /
  // spec.ingest_dedup and the `ingest` block (disposition counts, max
  // observed disorder, final watermark) whenever the run's inputs went
  // through the disorder-tolerant ingestion layer (stream/disorder.h);
  // runs without an ingest policy omit the block.
  // v8: adds the always-present `kernels` block naming the resolved kernel
  // mode and the variant each hot-path phase actually executed (scatter:
  // scalar|swwc, build: scalar|lockfree, probe: scalar|batched|simd) —
  // after tracer forcing and the AVX2 runtime dispatch, so A/B tooling sees
  // what ran, not what was asked for.
  // v9: adds the `serve` block (tenant, window slot, pool placement, queue
  // wait, cross-tenant steal and shed totals) whenever the run executed
  // inside the iawj_serve daemon (src/serve/); offline runs omit the block.
  w.Field("record_version", int64_t{9});
  w.Field("timestamp_utc", UtcTimestamp(/*compact=*/false));
  w.Field("git_describe", GitDescribeStamp());
  w.Field("pid", int64_t{getpid()});

  w.Field("status", result.status.ok() ? "ok" : "failed");
  if (!result.status.ok()) {
    w.Field("status_code", std::string(StatusCodeName(result.status.code())));
    w.Field("status_message", std::string(result.status.message()));
  }

  w.Field("algorithm", result.algorithm);
  if (!context.bench.empty()) w.Field("bench", context.bench);
  if (!context.workload.empty()) w.Field("workload", context.workload);
  if (context.workload_scale > 0) {
    w.Field("workload_scale", context.workload_scale);
  }

  w.Key("spec").BeginObject();
  w.Field("num_threads", int64_t{spec.num_threads});
  w.Field("window_ms", uint64_t{spec.window_ms});
  w.Field("clock_mode", ClockModeName(spec.clock_mode));
  w.Field("time_scale", spec.time_scale);
  w.Field("radix_bits", int64_t{spec.radix_bits});
  w.Field("radix_passes", int64_t{spec.radix_passes});
  w.Field("pmj_delta", spec.pmj_delta);
  w.Field("jb_group_size", int64_t{spec.jb_group_size});
  w.Field("eager_physical_partition", spec.eager_physical_partition);
  w.Field("use_simd", spec.use_simd);
  w.Field("pin_threads", spec.pin_threads);
  w.Field("hash_table_kind", HashTableKindName(spec.hash_table_kind));
  w.Field("kernels", KernelModeName(spec.kernels));
  // The mode the run actually used: `kernels` is the spec knob as given
  // (often "auto"), resolved here against $IAWJ_KERNELS so A/B tooling can
  // key on what executed without replicating the resolution rules.
  w.Field("kernels_resolved",
          KernelModeName(ResolveKernelMode(spec.kernels)));
  // Same spec-knob / resolved-mode split as the kernels pair: `scheduler`
  // is the knob as given, `scheduler_resolved` what the run executed.
  w.Field("scheduler", std::string(SchedulerModeName(spec.scheduler)));
  w.Field("scheduler_resolved",
          std::string(SchedulerModeName(result.scheduler_resolved)));
  w.Field("morsel_size", uint64_t{result.morsel_size});
  w.Field("disorder_slack_ms", spec.disorder_slack_ms);
  w.Field("allowed_lateness_ms", spec.allowed_lateness_ms);
  w.Field("ingest_dedup", spec.ingest_dedup);
  w.EndObject();

  w.Field("inputs", uint64_t{result.inputs});
  w.Field("matches", uint64_t{result.matches});
  w.Field("checksum", uint64_t{result.checksum});
  w.Field("throughput_per_ms", result.throughput_per_ms);
  w.Field("p95_latency_ms", result.p95_latency_ms);
  w.Field("mean_latency_ms", result.mean_latency_ms);
  w.Field("last_match_ms", result.last_match_ms);
  w.Field("elapsed_ms", result.elapsed_ms);
  w.Field("cpu_time_ms", result.cpu_time_ms);
  w.Field("work_ns_per_input", result.WorkNsPerInput());
  w.Field("t50_ms", result.progress.TimeToFractionMs(0.5));
  w.Field("peak_tracked_bytes", int64_t{result.peak_tracked_bytes});

  // v3: present only for supervised runs (attempts >= 1) or when something
  // was shed/skipped — an unsupervised clean run carries no recovery block,
  // so old consumers see byte-identical shape modulo record_version.
  if (!result.recovery.empty() || result.recovery.attempts > 0) {
    const RecoveryLog& rec = result.recovery;
    w.Key("recovery").BeginObject();
    w.Field("attempts", int64_t{rec.attempts});
    w.Field("fallbacks_taken", int64_t{rec.fallbacks_taken});
    w.Field("windows_skipped", uint64_t{rec.windows_skipped});
    w.Field("tuples_dropped", uint64_t{rec.tuples_dropped});
    w.Field("est_matches_lost", rec.est_matches_lost);
    w.Field("tuples_shed", uint64_t{rec.tuples_shed});
    w.Field("shed_ratio", rec.shed_ratio);
    w.Field("recovered", rec.recovered());
    w.Field("degraded", rec.degraded());
    w.Key("events").BeginArray();
    for (const RecoveryEvent& e : rec.events) {
      w.BeginObject();
      w.Field("action", std::string(RecoveryActionName(e.action)));
      w.Field("trigger", std::string(StatusCodeName(e.trigger)));
      w.Field("attempt", int64_t{e.attempt});
      if (!e.detail.empty()) w.Field("detail", e.detail);
      if (e.backoff_ms > 0) w.Field("backoff_ms", e.backoff_ms);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }

  // v4: present only for morsel-scheduled runs — the static baseline has no
  // counters to report and keeps its pre-v4 shape modulo record_version.
  if (result.scheduler_resolved == SchedulerMode::kMorsel &&
      !result.worker_morsels.empty()) {
    const MorselStats totals = result.MorselTotals();
    w.Key("scheduler").BeginObject();
    w.Field("mode",
            std::string(SchedulerModeName(result.scheduler_resolved)));
    w.Field("morsel_size", uint64_t{result.morsel_size});
    w.Field("numa_nodes", int64_t{result.numa_nodes});
    w.Field("morsels", uint64_t{totals.morsels});
    w.Field("tuples", uint64_t{totals.tuples});
    w.Field("steals", uint64_t{totals.steals});
    w.Field("steal_misses", uint64_t{totals.steal_misses});
    w.Field("remote_steals", uint64_t{totals.remote_steals});
    w.Key("workers").BeginArray();
    for (size_t t = 0; t < result.worker_morsels.size(); ++t) {
      const MorselStats& st = result.worker_morsels[t];
      w.BeginObject();
      w.Field("worker", static_cast<int64_t>(t));
      w.Field("node", int64_t{result.worker_nodes[t]});
      w.Field("morsels", uint64_t{st.morsels});
      w.Field("tuples", uint64_t{st.tuples});
      w.Field("steals", uint64_t{st.steals});
      w.Field("steal_misses", uint64_t{st.steal_misses});
      w.Field("remote_steals", uint64_t{st.remote_steals});
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }

  // v8: always present — every run executes some kernel plan, scalar
  // included, and naming it unconditionally is what lets A/B tooling split
  // result sets without consulting the resolution rules.
  w.Key("kernels").BeginObject();
  w.Field("mode", KernelModeName(result.kernels_resolved));
  w.Field("scatter", result.kernel_scatter);
  w.Field("build", result.kernel_build);
  w.Field("probe", result.kernel_probe);
  w.EndObject();

  // v6: present only when the algorithm spilled partitions to disk (HHJ
  // under a memory budget) — in-memory runs keep their pre-v6 shape modulo
  // record_version. A run that spilled and still reports status "ok" was
  // exact: spilling degrades time, never the answer.
  if (result.spill.any()) {
    const SpillStats& sp = result.spill;
    w.Key("spill").BeginObject();
    w.Field("partitions", uint64_t{sp.partitions});
    w.Field("partitions_spilled", uint64_t{sp.partitions_spilled});
    w.Field("partitions_resident", uint64_t{sp.partitions_resident});
    w.Field("bytes_written", uint64_t{sp.bytes_written});
    w.Field("bytes_read", uint64_t{sp.bytes_read});
    w.Field("pages_written", uint64_t{sp.pages_written});
    w.Field("pages_read", uint64_t{sp.pages_read});
    w.Field("recursion_depth", uint64_t{sp.recursion_depth});
    w.Field("bnl_fallbacks", uint64_t{sp.bnl_fallbacks});
    w.Field("spill_elapsed_ms", sp.spill_elapsed_ms);
    w.EndObject();
  }

  // v7: present only when the inputs went through the ingest layer — runs
  // without a configured policy keep their pre-v7 shape modulo
  // record_version, honoring the zero-overhead contract. Dispositions obey
  // tuples_out + late_dropped + duplicates + corrupt == tuples_in.
  if (result.ingest.any()) {
    const IngestStats& in = result.ingest;
    w.Key("ingest").BeginObject();
    w.Field("tuples_in", uint64_t{in.tuples_in});
    w.Field("tuples_out", uint64_t{in.tuples_out});
    w.Field("reordered", uint64_t{in.reordered});
    w.Field("late_total", uint64_t{in.late_total});
    w.Field("late_admitted", uint64_t{in.late_admitted});
    w.Field("late_dropped", uint64_t{in.late_dropped});
    w.Field("duplicates", uint64_t{in.duplicates});
    w.Field("corrupt", uint64_t{in.corrupt});
    w.Field("watermark_clamps", uint64_t{in.watermark_clamps});
    w.Field("max_disorder_ms", uint64_t{in.max_disorder_ms});
    w.Field("max_ts_ms", uint64_t{in.max_ts_ms});
    w.Field("final_watermark_ms", uint64_t{in.final_watermark_ms});
    w.EndObject();
  }

  // v9: present only for windows the iawj_serve daemon executed — offline
  // runs keep their pre-v9 shape modulo record_version. Placement fields
  // (worker, stolen, wait_ms) attribute multi-tenant interference; the
  // steal/shed totals are daemon-lifetime counters sampled at completion,
  // so deltas between consecutive records of one tenant are meaningful.
  if (context.serve.active) {
    const ServeRecordInfo& sv = context.serve;
    w.Key("serve").BeginObject();
    w.Field("tenant", sv.tenant);
    w.Field("window_index", uint64_t{sv.window_index});
    w.Field("window_start_ms", uint64_t{sv.window_start_ms});
    w.Field("tenants_active", int64_t{sv.tenants_active});
    w.Field("queue_depth", uint64_t{sv.queue_depth});
    w.Field("cross_tenant_steals", uint64_t{sv.cross_tenant_steals});
    w.Field("windows_shed", uint64_t{sv.windows_shed});
    w.Field("wait_ms", sv.wait_ms);
    w.Field("worker", int64_t{sv.worker});
    w.Field("stolen", sv.stolen);
    w.EndObject();
  }

  w.Key("phase_ns").BeginObject();
  for (int p = 0; p < kNumPhases; ++p) {
    const Phase phase = static_cast<Phase>(p);
    w.Key(PhaseName(phase)).Uint(result.phases.GetNs(phase));
  }
  w.EndObject();

  // v5: always present. `available` leads the block — downstream greps key
  // on the literal prefix `"pmu": {"available": ...`. When measured, totals
  // are the per-event sums over phases, so any per-phase delta is <= its
  // total by construction (iawj_trace_check --records asserts this).
  w.Key("pmu").BeginObject();
  w.Field("available", result.pmu.available);
  w.Field("requested", result.pmu.requested);
  if (!result.pmu.available) {
    w.Field("reason", result.pmu.reason);
  } else {
    const int num_events = static_cast<int>(result.pmu.events.size());
    w.Key("events").BeginArray();
    for (const std::string& name : result.pmu.events) w.String(name);
    w.EndArray();
    w.Key("totals").BeginObject();
    for (int e = 0; e < num_events; ++e) {
      w.Key(result.pmu.events[e]).Uint(result.pmu.profile.Total(e));
    }
    w.EndObject();
    w.Key("per_input").BeginObject();
    for (int e = 0; e < num_events; ++e) {
      const double per_input =
          result.inputs > 0
              ? static_cast<double>(result.pmu.profile.Total(e)) /
                    static_cast<double>(result.inputs)
              : 0;
      w.Key(result.pmu.events[e]).Double(per_input);
    }
    w.EndObject();
    const uint64_t cycles = result.pmu.profile.Total(0);
    const uint64_t instructions = result.pmu.profile.Total(1);
    w.Field("ipc", cycles > 0 ? static_cast<double>(instructions) /
                                    static_cast<double>(cycles)
                              : 0.0);
    w.Key("phases").BeginObject();
    for (int p = 0; p < kNumPhases; ++p) {
      const Phase phase = static_cast<Phase>(p);
      w.Key(PhaseName(phase)).BeginObject();
      for (int e = 0; e < num_events; ++e) {
        w.Key(result.pmu.events[e]).Uint(result.pmu.profile.Get(p, e));
      }
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndObject();

  // v5: always present — a snapshot of the live metrics registry, or
  // {enabled: false} when $IAWJ_METRICS_DIR is unset and nothing forced it.
  w.Key("metrics");
  metrics::WriteJson(&w);

  w.EndObject();
  return w.str();
}

Status WriteRunRecord(const RunResult& result, const JoinSpec& spec,
                      const RunRecordContext& context, const std::string& dir,
                      std::string* path_out) {
  if (dir.empty()) {
    return Status::InvalidArgument("empty run-record directory");
  }
  if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::FailedPrecondition("cannot create directory " + dir);
  }
  static std::atomic<uint64_t> sequence{0};
  const uint64_t seq = sequence.fetch_add(1, std::memory_order_relaxed);
  const std::string path = dir + "/run_" + UtcTimestamp(/*compact=*/true) +
                           "_" + std::to_string(getpid()) + "_" +
                           std::to_string(seq) + "_" +
                           SanitizeForFilename(result.algorithm) + ".json";
  std::ofstream out(path);
  if (!out) {
    return Status::FailedPrecondition("cannot open " + path + " for writing");
  }
  const std::string json = RunRecordJson(result, spec, context);
  // Fault: the writer dies mid-write, leaving a torn half-record on disk —
  // the crash-consistency shape iawj_trace_check --records must reject
  // with a parse error instead of crashing or accepting.
  if (fault::Enabled() && fault::Inject("record_truncate")) {
    out << json.substr(0, json.size() / 2);
    out.flush();
    if (path_out != nullptr) *path_out = path;  // the torn file is on disk
    return Status::DataLoss("injected mid-write crash on " + path);
  }
  out << json << "\n";
  if (!out.good()) {
    return Status::FailedPrecondition("write to " + path + " failed");
  }
  if (path_out != nullptr) *path_out = path;
  return Status::Ok();
}

bool MaybeWriteRunRecord(const RunResult& result, const JoinSpec& spec,
                         const RunRecordContext& context) {
  const char* dir = std::getenv("IAWJ_METRICS_DIR");
  if (dir == nullptr || dir[0] == '\0') return false;
  const Status status = WriteRunRecord(result, spec, context, dir);
  if (!status.ok()) {
    IAWJ_LOG(Warning) << "run-record emission failed: " << status.ToString();
    return false;
  }
  return true;
}

}  // namespace iawj
