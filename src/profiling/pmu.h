// Hardware PMU counters via perf_event_open(2) (ISSUE 6 tentpole).
//
// The paper's microarchitectural exhibits (§5.6, Table 5, Figs. 8/19) are
// built on real PMU counters read through Intel PCM; until now this repo
// only reproduced them on the trace-driven cache *simulator*
// (profiling/cache_sim.h). This subsystem measures the actual hardware:
// each worker thread opens one perf event group — cycles, instructions,
// L1D misses, LLC misses, dTLB misses, branch misses, plus extra raw
// events from $IAWJ_PMU_EVENTS — and the phase-attribution hooks in
// profiling/phase.h snapshot the group at phase boundaries, so every phase
// of every worker gets real counter deltas next to its nanoseconds.
//
// Degradation is graceful by construction: perf_event_open is refused in
// most containers (seccomp) and on hosts with kernel.perf_event_paranoid
// >= 2 for unprivileged users. Availability is probed once per process and
// cached; when the kernel refuses, every run still completes normally and
// reports {available: false, reason: "pmu unavailable: ..."} in its run
// record — PMU absence is a measurement note, never a failure.
//
// Cost model: with PMU off (not requested, or unavailable) the per-phase
// hook is one thread-local pointer load. With PMU on, group reads are
// throttled to kMinSampleNs so the eager engine's tuple-granular phase
// flapping cannot degenerate into a read(2) per tuple: counts accrued
// below the threshold stay attributed to the phase that was current at
// the last snapshot — the same bounded-granularity contract the trace
// timeline uses (see PhaseStopwatch).
#ifndef IAWJ_PROFILING_PMU_H_
#define IAWJ_PROFILING_PMU_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace iawj {

enum class Phase : int;  // profiling/phase.h

namespace pmu {

// Fixed event slots + room for $IAWJ_PMU_EVENTS extras. kMaxPhases must
// cover kNumPhases (static_assert in pmu.cc — the two headers cannot
// include each other).
inline constexpr int kMaxEvents = 16;
inline constexpr int kMaxPhases = 8;
inline constexpr int kNumFixedEvents = 6;

// Group reads are throttled to one per this many nanoseconds per thread;
// phase switches below the threshold keep accruing into the current phase.
inline constexpr uint64_t kMinSampleNs = 50 * 1000;  // 50 us

// One counter to open: a perf_event_attr (type, config) plus its report
// name. The fixed six use PERF_TYPE_HARDWARE / PERF_TYPE_HW_CACHE; extras
// from $IAWJ_PMU_EVENTS are PERF_TYPE_RAW.
struct EventDef {
  std::string name;
  uint32_t type = 0;
  uint64_t config = 0;
};

// The fixed event list every group opens.
std::vector<EventDef> FixedEvents();

// Parses the $IAWJ_PMU_EVENTS grammar: a comma-separated list of
// name=r<hex> raw events (e.g. "offcore_misses=r01b7,uops=r010e"). Names
// must be [a-z0-9_]+ and unique against the fixed set; at most
// kMaxEvents - kNumFixedEvents extras fit. Malformed input returns
// invalid_argument and leaves *out untouched.
Status ParseExtraEvents(const std::string& text,
                        std::vector<EventDef>* out);

// The process-wide resolved event list: fixed + $IAWJ_PMU_EVENTS extras,
// cached on first call. A malformed $IAWJ_PMU_EVENTS drops the extras and
// surfaces through Probe() as unavailable instead.
const std::vector<EventDef>& Events();

// Per-worker, per-phase counter deltas. Plain uint64 arrays — each worker
// owns exactly one, merged by the runner like PhaseProfile.
class PmuProfile {
 public:
  PmuProfile() {
    for (auto& row : values_) row.fill(0);
  }

  void Add(int phase, const uint64_t* delta, int n) {
    for (int e = 0; e < n; ++e) values_[phase][e] += delta[e];
  }

  void Merge(const PmuProfile& other) {
    for (int p = 0; p < kMaxPhases; ++p) {
      for (int e = 0; e < kMaxEvents; ++e) {
        values_[p][e] += other.values_[p][e];
      }
    }
  }

  uint64_t Get(int phase, int event) const { return values_[phase][event]; }

  // Sum over phases — the run total for one event; phase deltas can never
  // exceed it, which iawj_trace_check --records asserts.
  uint64_t Total(int event) const {
    uint64_t total = 0;
    for (int p = 0; p < kMaxPhases; ++p) total += values_[p][event];
    return total;
  }

  bool empty() const {
    for (int p = 0; p < kMaxPhases; ++p) {
      for (int e = 0; e < kMaxEvents; ++e) {
        if (values_[p][e] != 0) return false;
      }
    }
    return true;
  }

 private:
  std::array<std::array<uint64_t, kMaxEvents>, kMaxPhases> values_;
};

// What a run reports about its PMU measurement: either per-phase deltas
// for the named events, or the reason there are none. Embedded in
// RunResult and serialized as the run record's "pmu" block.
struct PmuReport {
  bool requested = false;  // was PMU measurement asked for at all
  bool available = false;
  std::string reason;              // set when !available
  std::vector<std::string> events;  // names, parallel to profile indices
  PmuProfile profile;              // summed across workers
};

// One thread's perf event group. Open() must be called on the measured
// thread (events are bound to the calling thread, any CPU). Not
// thread-safe; each worker owns exactly one.
class PmuGroup {
 public:
  PmuGroup() = default;
  ~PmuGroup() { Close(); }
  PmuGroup(const PmuGroup&) = delete;
  PmuGroup& operator=(const PmuGroup&) = delete;

  // Opens one counter per Events() entry as a single group on the calling
  // thread. A refused leader fails the whole group (failed_precondition
  // with the errno spelled out); a refused sibling is skipped — its slot
  // reads as zero and its name is dropped from event_names().
  Status Open();

  bool ok() const { return leader_fd_ >= 0; }
  int num_events() const { return static_cast<int>(open_names_.size()); }
  const std::vector<std::string>& event_names() const { return open_names_; }

  // Reads all open counters, multiplex-scaled (value * enabled / running).
  // out must hold kMaxEvents slots and is indexed by the Events() order —
  // slots of skipped siblings (and beyond Events().size()) read as zero, so
  // counter index i always means Events()[i] regardless of what opened.
  Status ReadCounters(uint64_t* out) const;

  void Close();

 private:
  int leader_fd_ = -1;
  std::vector<int> fds_;                 // all fds including the leader
  std::vector<std::string> open_names_;  // names of successfully opened
  std::vector<uint64_t> ids_;            // perf ids, parallel to open_names_
  std::vector<int> event_slots_;         // Events() index, parallel to ids_
};

// Whether PMU measurement was requested: $IAWJ_PMU=1, or forced
// programmatically (the --counters=pmu flag path). Cached after first use;
// ForceRequested overrides either way.
bool Requested();
void ForceRequested(bool requested);

struct Availability {
  bool available = false;
  std::string reason;  // "pmu unavailable: <why>" when !available
};

// Probes availability once per process (opens and closes a scratch group
// on the calling thread) and caches the outcome. Safe to call from any
// thread; never fails — refusal becomes {false, reason}.
const Availability& Probe();

// --- Per-thread phase attribution ----------------------------------------

// Installed state for the current thread; non-null only between
// ScopedThreadPmu construction and Finish()/destruction.
struct ThreadPmu {
  PmuGroup group;
  PmuProfile* out = nullptr;
  int current_phase = 0;
  uint64_t last_sample_ns = 0;
  std::array<uint64_t, kMaxEvents> mark{};  // counter values at last sample

  // Snapshots the group and attributes the delta since `mark` to
  // current_phase (clamped at zero per event: multiplex scaling can jitter
  // estimates downward). Then switches to next_phase.
  void Switch(int next_phase);
};

inline thread_local ThreadPmu* t_pmu = nullptr;

// RAII: opens this thread's event group (when PMU is requested and
// available) and installs the phase hook; the destructor attributes the
// trailing delta and uninstalls. Zero side effects when PMU is off.
class ScopedThreadPmu {
 public:
  explicit ScopedThreadPmu(PmuProfile* out);
  ~ScopedThreadPmu() { Finish(); }

  ScopedThreadPmu(const ScopedThreadPmu&) = delete;
  ScopedThreadPmu& operator=(const ScopedThreadPmu&) = delete;

  bool installed() const { return installed_; }

  // Final snapshot + uninstall, idempotent; lets the runner read per-worker
  // totals (trace counter tracks) before the scope unwinds.
  void Finish();

 private:
  ThreadPmu state_;
  bool installed_ = false;
};

// Phase hook used by ScopedPhase / PhaseStopwatch (profiling/phase.h).
// Returns the phase that was current before the call so RAII scopes can
// restore it. Cost with PMU off: one thread-local load.
Phase SwitchPhase(Phase next);

// Test hook: drops the cached Requested/Probe/Events state so tests can
// exercise the env-parsing and refusal paths repeatedly.
void ResetForTesting();

}  // namespace pmu
}  // namespace iawj

#endif  // IAWJ_PROFILING_PMU_H_
