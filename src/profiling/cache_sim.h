// Trace-driven cache-hierarchy simulator.
//
// The paper profiles cache behaviour with Intel PCM / perf (Figure 8,
// Table 5, Figure 19a). Hardware counters are not portable (nor available in
// the validation environment), so this simulator substitutes for them: the
// hash, partition, and sort substrates expose instrumented variants that
// forward every data access here, and the profiling benches replay the exact
// algorithm code over the simulated hierarchy.
//
// The hierarchy is modelled after the paper's Xeon Gold 6126: 32 KiB 8-way
// L1D, 1 MiB 16-way L2, 19 MiB L3 (modelled as 16 MiB 16-way so set counts
// stay a power of two), 64 B lines, plus a 64-entry 4-way data TLB over 4 KiB
// pages. Inclusive, LRU per set. What the paper's analysis uses — relative
// miss counts between algorithms and phases — is a function of the access
// pattern, which this reproduces; absolute counts differ from real silicon
// (no prefetchers, no OoO overlap) and are labelled as simulated.
#ifndef IAWJ_PROFILING_CACHE_SIM_H_
#define IAWJ_PROFILING_CACHE_SIM_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/profiling/phase.h"

namespace iawj {

struct CacheLevelConfig {
  uint64_t size_bytes;
  int ways;
  uint64_t line_bytes;
};

// One set-associative, LRU cache level.
class CacheLevel {
 public:
  explicit CacheLevel(const CacheLevelConfig& config);

  // Returns true on hit; on miss the line is installed.
  bool Access(uint64_t addr);

  uint64_t accesses() const { return accesses_; }
  uint64_t misses() const { return misses_; }
  void ResetCounters() { accesses_ = misses_ = 0; }

 private:
  uint64_t line_bits_;
  uint64_t set_mask_;
  int ways_;
  // tags_[set * ways + way]; lru_[same index] is a recency stamp.
  std::vector<uint64_t> tags_;
  std::vector<uint64_t> lru_;
  uint64_t tick_ = 0;
  uint64_t accesses_ = 0;
  uint64_t misses_ = 0;
};

// Per-phase hierarchy miss counters.
struct CacheCounters {
  uint64_t accesses = 0;
  uint64_t l1_misses = 0;
  uint64_t l2_misses = 0;
  uint64_t l3_misses = 0;
  uint64_t tlb_misses = 0;

  CacheCounters& operator+=(const CacheCounters& other);
};

class CacheSim {
 public:
  CacheSim(const CacheLevelConfig& l1, const CacheLevelConfig& l2,
           const CacheLevelConfig& l3, int tlb_entries, int tlb_ways);

  // The hierarchy used throughout the benches (paper's evaluation machine).
  static CacheSim XeonGold6126();

  void SetPhase(Phase phase) { phase_ = static_cast<int>(phase); }

  // Simulates a data access of `bytes` bytes starting at `addr`, touching
  // every cache line the range covers.
  void Access(const void* addr, uint64_t bytes);

  const CacheCounters& counters(Phase phase) const {
    return counters_[static_cast<int>(phase)];
  }
  CacheCounters Total() const;

 private:
  CacheLevel l1_;
  CacheLevel l2_;
  CacheLevel l3_;
  CacheLevel tlb_;
  int phase_ = static_cast<int>(Phase::kOther);
  std::array<CacheCounters, kNumPhases> counters_;
};

// Tracer hooks: the hash/partition/sort substrates are templated on a tracer
// so the production build pays nothing (NullTracer methods inline away) while
// the profiling benches plug in the simulator.
struct NullTracer {
  static constexpr bool kEnabled = false;
  void Access(const void*, uint64_t) {}
  void SetPhase(Phase) {}
};

class SimTracer {
 public:
  static constexpr bool kEnabled = true;
  explicit SimTracer(CacheSim* sim) : sim_(sim) {}
  void Access(const void* addr, uint64_t bytes) { sim_->Access(addr, bytes); }
  void SetPhase(Phase phase) { sim_->SetPhase(phase); }

 private:
  CacheSim* sim_;
};

}  // namespace iawj

#endif  // IAWJ_PROFILING_CACHE_SIM_H_
