// Per-thread execution-time breakdown (paper §5.3, Figure 7).
//
// Each worker attributes its wall time to one of six phases; the runner
// aggregates per-thread profiles into the per-input-tuple breakdown the paper
// reports: wait / partition / build-sort / merge / probe / others.
#ifndef IAWJ_PROFILING_PHASE_H_
#define IAWJ_PROFILING_PHASE_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <string_view>

#include "src/profiling/pmu.h"
#include "src/profiling/trace.h"

namespace iawj {

enum class Phase : int {
  kWait = 0,
  kPartition,
  kBuild,   // hash-table construction, or "sort" for sort-based algorithms
  kSort,    // tuple sorting (sort-based algorithms)
  kMerge,   // run/partition merging (sort-based algorithms)
  kProbe,   // tuple matching
  kOther,
};
inline constexpr int kNumPhases = 7;

std::string_view PhaseName(Phase phase);

// One worker thread's accumulated nanoseconds per phase. Not thread-safe;
// each worker owns exactly one.
class PhaseProfile {
 public:
  PhaseProfile() { ns_.fill(0); }

  void AddNs(Phase phase, uint64_t ns) { ns_[static_cast<int>(phase)] += ns; }
  uint64_t GetNs(Phase phase) const { return ns_[static_cast<int>(phase)]; }

  void Merge(const PhaseProfile& other) {
    for (int i = 0; i < kNumPhases; ++i) ns_[i] += other.ns_[i];
  }

  uint64_t TotalNs() const {
    uint64_t total = 0;
    for (auto v : ns_) total += v;
    return total;
  }

 private:
  std::array<uint64_t, kNumPhases> ns_;
};

// RAII phase attribution. Nesting is allowed: time spent in an inner scope is
// charged to the inner phase only. When the thread has a trace recorder
// installed (trace::ScopedThreadTrace), the scope also emits a Chrome-trace
// span named after the phase; when a PMU group is installed
// (pmu::ScopedThreadPmu), entering/leaving the scope snapshots the hardware
// counters so PMU deltas follow the same nesting rules as nanoseconds.
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfile* profile, Phase phase)
      : profile_(profile),
        phase_(phase),
        traced_(trace::Active()),
        pmu_prev_(pmu::SwitchPhase(phase)),
        start_(std::chrono::steady_clock::now()) {
    if (traced_) trace::BeginSpan(PhaseName(phase).data());
  }
  ~ScopedPhase() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    profile_->AddNs(phase_, static_cast<uint64_t>(ns));
    pmu::SwitchPhase(pmu_prev_);
    if (traced_) trace::EndSpan();
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseProfile* profile_;
  Phase phase_;
  bool traced_;
  Phase pmu_prev_;
  std::chrono::steady_clock::time_point start_;
};

// Manual start/stop timer for phases interleaved at tuple granularity, where
// RAII scopes would be awkward (the eager engine's pull loop).
//
// With a trace recorder installed the stopwatch also draws a phase timeline,
// but at bounded granularity: an open trace span only closes when the phase
// changes AND the span has been open at least trace::g_min_span_ns. Eager
// loops flap phases every tuple; exact span-per-change would emit millions
// of events, so the timeline shows the phase that *started* each ≥threshold
// stretch while the nanosecond-exact attribution stays in PhaseProfile. The
// event count is thereby bounded by run_duration / min_span per thread.
class PhaseStopwatch {
 public:
  explicit PhaseStopwatch(PhaseProfile* profile) : profile_(profile) {}

  void Switch(Phase phase) {
    pmu::SwitchPhase(phase);  // throttled internally; see pmu.h cost model
    const auto now = std::chrono::steady_clock::now();
    if (running_) {
      profile_->AddNs(current_, static_cast<uint64_t>(
                                    std::chrono::duration_cast<
                                        std::chrono::nanoseconds>(now - mark_)
                                        .count()));
    }
    current_ = phase;
    mark_ = now;
    running_ = true;
    if (trace::Active()) {
      const uint64_t now_ns = trace::NowNs();
      if (!tracing_) {
        trace::BeginSpan(PhaseName(phase).data());
        span_phase_ = phase;
        span_start_ns_ = now_ns;
        tracing_ = true;
      } else if (phase != span_phase_ &&
                 now_ns - span_start_ns_ >=
                     trace::g_min_span_ns.load(std::memory_order_relaxed)) {
        trace::EndSpan();
        trace::BeginSpan(PhaseName(phase).data());
        span_phase_ = phase;
        span_start_ns_ = now_ns;
      }
    }
  }

  void Stop() {
    if (!running_) return;
    const auto now = std::chrono::steady_clock::now();
    profile_->AddNs(current_,
                    static_cast<uint64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            now - mark_)
                            .count()));
    running_ = false;
    if (tracing_) {
      trace::EndSpan();
      tracing_ = false;
    }
  }

 private:
  PhaseProfile* profile_;
  Phase current_ = Phase::kOther;
  std::chrono::steady_clock::time_point mark_;
  bool running_ = false;
  // Trace-timeline state (meaningful only while tracing_).
  Phase span_phase_ = Phase::kOther;
  uint64_t span_start_ns_ = 0;
  bool tracing_ = false;
};

}  // namespace iawj

#endif  // IAWJ_PROFILING_PHASE_H_
