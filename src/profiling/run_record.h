// Structured run records: one JSON object per executed join (ISSUE 1).
//
// Every RunResult can be exported as a machine-readable record carrying the
// algorithm, the full JoinSpec, all reported metrics, the per-phase
// breakdown, a git-describe stamp, and a wall-clock timestamp — giving the
// repository a mechanical perf trajectory across PRs. Emission is gated on
// IAWJ_METRICS_DIR: when set, each record lands as its own file
// <dir>/run_<utc>_<pid>_<seq>_<algo>.json; when unset, emission is a no-op.
#ifndef IAWJ_PROFILING_RUN_RECORD_H_
#define IAWJ_PROFILING_RUN_RECORD_H_

#include <string>

#include "src/common/status.h"
#include "src/join/runner.h"

namespace iawj {

// Serving provenance for one tenant-window record (the v9 `serve` block).
// Filled by the iawj_serve daemon; `active` gates emission so offline runs
// keep their pre-v9 shape modulo record_version. Declared here rather than
// in src/serve/ so profiling stays independent of the serving layer.
struct ServeRecordInfo {
  bool active = false;
  std::string tenant;             // tenant name from the hello frame
  uint64_t window_index = 0;      // tumbling slot: start / window_ms
  uint64_t window_start_ms = 0;
  int64_t tenants_active = 0;     // registered tenants when the job ran
  uint64_t queue_depth = 0;       // tenant jobs pending at submit time
  uint64_t cross_tenant_steals = 0;  // pool lifetime total at completion
  uint64_t windows_shed = 0;      // daemon lifetime total at completion
  double wait_ms = 0;             // queue wait: submit -> execution start
  int64_t worker = -1;            // pool worker that executed the window
  bool stolen = false;            // executed off the tenant's home worker
};

// Caller-provided provenance for a record; all fields optional.
struct RunRecordContext {
  std::string bench;       // emitting binary or figure name
  std::string workload;    // workload label, when the caller knows it
  double workload_scale = 0;  // bench scale factor; 0 = unreported
  ServeRecordInfo serve;   // v9: present only for daemon-executed windows
};

// The record as a single JSON object (no trailing newline).
std::string RunRecordJson(const RunResult& result, const JoinSpec& spec,
                          const RunRecordContext& context = {});

// Writes the record into `dir` (created if missing, single level). Returns
// the path written via *path_out when non-null.
Status WriteRunRecord(const RunResult& result, const JoinSpec& spec,
                      const RunRecordContext& context, const std::string& dir,
                      std::string* path_out = nullptr);

// Emits to $IAWJ_METRICS_DIR when set; returns whether a record was written.
// Failures are logged as warnings, never fatal: observability must not take
// down an experiment.
bool MaybeWriteRunRecord(const RunResult& result, const JoinSpec& spec,
                         const RunRecordContext& context = {});

// `git describe --always --dirty --tags` of the working tree, cached after
// the first call; "unknown" when git or the repo is unavailable.
std::string GitDescribeStamp();

}  // namespace iawj

#endif  // IAWJ_PROFILING_RUN_RECORD_H_
