// Process-wide live metrics registry (ISSUE 6 tentpole).
//
// Named counters, gauges, and log-bucketed histograms that every subsystem
// publishes into: the runner (runs, scheduler steal totals, PMU counter
// totals), the supervisor (retries, fallbacks, skipped windows, shed
// tuples), and whatever the serving daemon grows next. One registry per
// process; a snapshot serializes every instrument as one JSON object —
// the run record's "metrics" block today, the `iawj_serve` scrape endpoint
// tomorrow (ROADMAP item 1).
//
// Cost contract:
//   - Disabled (the default: $IAWJ_METRICS_DIR unset, no ForceEnable):
//     every Add/Set/Record is ONE relaxed atomic load and a branch — no
//     other atomics, no locks, no allocation. Instrumented hot paths cost
//     nothing in production.
//   - Enabled: Counter::Add is one relaxed fetch_add on a cache-line-padded
//     shard picked per thread, so 8 workers bumping one counter never
//     contend on one line. Value() sums the shards (reader pays).
//   - Lookup (GetCounter etc.) takes the registry mutex; call it once and
//     cache the pointer — handles are stable for the process lifetime.
//
// Histograms reuse the log-bucketed fixed-memory LatencyHistogram
// (common/histogram.h): constant footprint, ~6% bucket resolution,
// quantiles by interpolation.
#ifndef IAWJ_PROFILING_METRICS_H_
#define IAWJ_PROFILING_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/histogram.h"

namespace iawj::json {
class Writer;
}

namespace iawj::metrics {

// Shard count: enough that a full 16-worker box rarely collides, small
// enough that Value() stays trivial.
inline constexpr int kShards = 16;

// -1 = not yet resolved from the environment; 0/1 = resolved. Kept inline
// so Enabled() compiles to a load + sign test on the hot path.
inline std::atomic<int> g_enabled{-1};

// Resolves the initial enabled state: true when $IAWJ_METRICS_DIR is set
// (the same gate as run records — if you asked for telemetry files you get
// live metrics feeding them). Out-of-line cold path.
bool EnabledSlow();

inline bool Enabled() {
  const int state = g_enabled.load(std::memory_order_relaxed);
  if (state >= 0) return state != 0;
  return EnabledSlow();
}

// Overrides the environment either way; tests and the serving daemon use
// this. Reset() (test hook) returns to env-driven.
void ForceEnable(bool enabled);

namespace internal {
// Stable per-thread shard index; assigned round-robin on first use so
// workers spread across shards regardless of thread-id hashing quality.
int ThisThreadShard();
}  // namespace internal

// Monotonic counter, sharded per thread.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (!Enabled()) return;
    shards_[internal::ThisThreadShard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_;
};

// Last-writer-wins gauge. One atomic — gauges are set per run, not per
// tuple, so sharding would only blur the reading.
class Gauge {
 public:
  void Set(int64_t value) {
    if (!Enabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Log-bucketed histogram, sharded LatencyHistogram per shard with a small
// per-shard lock (Record is per run/window, never per tuple).
class Histogram {
 public:
  void Record(double value) {
    if (!Enabled()) return;
    Shard& shard = shards_[internal::ThisThreadShard()];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.histogram.RecordMs(value);
  }

  // Merged view of all shards.
  LatencyHistogram Merged() const {
    LatencyHistogram merged;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      merged.Merge(shard.histogram);
    }
    return merged;
  }

 private:
  struct alignas(64) Shard {
    mutable std::mutex mu;
    LatencyHistogram histogram;
  };
  std::array<Shard, kShards> shards_;
};

// Registry lookups: returns the instrument registered under `name`,
// creating it on first use. Pointers are stable for the process lifetime;
// cache them outside hot loops. A name is bound to one instrument kind —
// asking for a Counter named like an existing Gauge returns nullptr (and
// logs once) instead of aliasing.
Counter* GetCounter(const std::string& name);
Gauge* GetGauge(const std::string& name);
Histogram* GetHistogram(const std::string& name);

// One instrument's snapshot row, name-sorted by Snapshot().
struct Sample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind;
  // Counter/gauge: `value`. Histogram: count/mean/p50/p95.
  double value = 0;
  uint64_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
};

std::vector<Sample> Snapshot();

// Serializes the registry as one JSON object:
//   {"enabled": true, "counters": {...}, "gauges": {...},
//    "histograms": {name: {count, mean, p50, p95}, ...}}
// Writes {"enabled": false} when disabled. Used for the run record's
// "metrics" block; `iawj_serve` will expose the same shape.
void WriteJson(json::Writer* writer);
std::string SnapshotJson();

// Test hook: drops every instrument and returns Enabled() to env-driven.
void ResetForTesting();

}  // namespace iawj::metrics

#endif  // IAWJ_PROFILING_METRICS_H_
