// Resource-usage sampling (paper Table 6 and Figure 19b).
//
// A background sampler records (elapsed_ms, tracked_bytes, process CPU time)
// at a fixed period while an experiment runs. CPU utilization is computed as
// consumed CPU time over wall time normalized by worker count; memory
// consumption over time comes from the allocation tracker.
#ifndef IAWJ_PROFILING_RESOURCE_H_
#define IAWJ_PROFILING_RESOURCE_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace iawj {

struct ResourceSample {
  double elapsed_ms;
  int64_t tracked_bytes;
  double cpu_time_ms;
};

class ResourceSampler {
 public:
  explicit ResourceSampler(double period_ms = 5.0);
  ~ResourceSampler();

  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

  void Start();
  void Stop();

  const std::vector<ResourceSample>& samples() const { return samples_; }

  // Average CPU utilization over the sampling window as a fraction of
  // `num_threads` fully-busy cores (can exceed 1.0 on an oversubscribed
  // host where helper threads also burn cycles).
  double CpuUtilization(int num_threads) const;

  // Process CPU time consumed so far (user + system), milliseconds.
  static double ProcessCpuTimeMs();

 private:
  void Loop();

  double period_ms_;
  std::atomic<bool> running_{false};
  std::thread thread_;
  std::vector<ResourceSample> samples_;
  std::chrono::steady_clock::time_point start_wall_;
  double start_cpu_ms_ = 0;
};

}  // namespace iawj

#endif  // IAWJ_PROFILING_RESOURCE_H_
