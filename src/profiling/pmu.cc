#include "src/profiling/pmu.h"

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "src/common/logging.h"
#include "src/profiling/phase.h"

namespace iawj::pmu {

static_assert(kNumPhases <= kMaxPhases,
              "PmuProfile phase rows must cover every Phase");

namespace {

long PerfEventOpen(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                   unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr uint64_t HwCacheConfig(uint64_t cache, uint64_t op,
                                 uint64_t result) {
  return cache | (op << 8) | (result << 16);
}

// errno -> an actionable reason. EACCES/EPERM almost always mean
// kernel.perf_event_paranoid or a container seccomp policy.
std::string OpenErrorReason(int err) {
  std::string reason = std::strerror(err);
  if (err == EACCES || err == EPERM) {
    reason +=
        " (kernel.perf_event_paranoid too high or container seccomp "
        "policy; try sysctl kernel.perf_event_paranoid=1)";
  } else if (err == ENOSYS) {
    reason += " (kernel built without perf events)";
  } else if (err == ENOENT) {
    reason += " (event not supported on this CPU)";
  }
  return reason;
}

bool ValidEventName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return true;
}

struct RequestedState {
  std::once_flag once;
  bool forced = false;
  bool value = false;
};
RequestedState& GetRequestedState() {
  static RequestedState state;
  return state;
}

struct ProbeState {
  std::once_flag once;
  Availability availability;
};
ProbeState*& GetProbeState() {
  static ProbeState* state = new ProbeState;
  return state;
}

struct EventsState {
  std::once_flag once;
  std::vector<EventDef> events;
  Status extras_status = Status::Ok();
};
EventsState*& GetEventsState() {
  static EventsState* state = new EventsState;
  return state;
}

// Parse status of $IAWJ_PMU_EVENTS, resolved alongside Events(); a
// malformed value keeps the fixed six and turns Probe() unavailable so
// the operator sees the mistake instead of silently losing their events.
const Status& ExtrasStatus() {
  Events();
  return GetEventsState()->extras_status;
}

}  // namespace

std::vector<EventDef> FixedEvents() {
  return {
      {"cycles", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
      {"instructions", PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
      {"l1d_misses", PERF_TYPE_HW_CACHE,
       HwCacheConfig(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                     PERF_COUNT_HW_CACHE_RESULT_MISS)},
      {"llc_misses", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
      {"dtlb_misses", PERF_TYPE_HW_CACHE,
       HwCacheConfig(PERF_COUNT_HW_CACHE_DTLB, PERF_COUNT_HW_CACHE_OP_READ,
                     PERF_COUNT_HW_CACHE_RESULT_MISS)},
      {"branch_misses", PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
  };
}

Status ParseExtraEvents(const std::string& text,
                        std::vector<EventDef>* out) {
  std::vector<EventDef> extras;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string entry = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) {
      if (text.empty()) break;  // "" parses to no extras
      return Status::InvalidArgument(
          "IAWJ_PMU_EVENTS: empty entry (want name=r<hex>[,name=r<hex>...])");
    }
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("IAWJ_PMU_EVENTS: '" + entry +
                                     "' has no '=' (want name=r<hex>)");
    }
    const std::string name = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (!ValidEventName(name)) {
      return Status::InvalidArgument(
          "IAWJ_PMU_EVENTS: bad event name '" + name +
          "' (want [a-z0-9_]+)");
    }
    if (value.size() < 2 || value[0] != 'r') {
      return Status::InvalidArgument(
          "IAWJ_PMU_EVENTS: bad event spec '" + value +
          "' for '" + name + "' (want r<hex>, a raw PMU encoding)");
    }
    char* end = nullptr;
    errno = 0;
    const uint64_t config = std::strtoull(value.c_str() + 1, &end, 16);
    if (end == value.c_str() + 1 || *end != '\0' || errno == ERANGE) {
      return Status::InvalidArgument(
          "IAWJ_PMU_EVENTS: '" + value + "' is not r followed by hex");
    }
    for (const EventDef& fixed : FixedEvents()) {
      if (fixed.name == name) {
        return Status::InvalidArgument(
            "IAWJ_PMU_EVENTS: '" + name + "' collides with a fixed event");
      }
    }
    for (const EventDef& prior : extras) {
      if (prior.name == name) {
        return Status::InvalidArgument("IAWJ_PMU_EVENTS: duplicate event '" +
                                       name + "'");
      }
    }
    extras.push_back({name, PERF_TYPE_RAW, config});
    if (static_cast<int>(extras.size()) > kMaxEvents - kNumFixedEvents) {
      return Status::InvalidArgument(
          "IAWJ_PMU_EVENTS: too many extra events (max " +
          std::to_string(kMaxEvents - kNumFixedEvents) + ")");
    }
    if (comma == text.size()) break;
  }
  *out = std::move(extras);
  return Status::Ok();
}

const std::vector<EventDef>& Events() {
  EventsState* state = GetEventsState();
  std::call_once(state->once, [state] {
    state->events = FixedEvents();
    const char* env = std::getenv("IAWJ_PMU_EVENTS");
    if (env == nullptr || env[0] == '\0') return;
    std::vector<EventDef> extras;
    state->extras_status = ParseExtraEvents(env, &extras);
    if (!state->extras_status.ok()) {
      IAWJ_LOG(Warning) << "ignoring IAWJ_PMU_EVENTS: "
                        << state->extras_status.ToString();
      return;
    }
    for (EventDef& extra : extras) state->events.push_back(std::move(extra));
  });
  return state->events;
}

Status PmuGroup::Open() {
  if (leader_fd_ >= 0) {
    return Status::FailedPrecondition("pmu group already open");
  }
  const std::vector<EventDef>& events = Events();
  for (int slot = 0; slot < static_cast<int>(events.size()); ++slot) {
    const EventDef& event = events[slot];
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = event.type;
    attr.config = event.config;
    attr.disabled = leader_fd_ < 0 ? 1 : 0;  // start the group atomically
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.inherit = 0;
    attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID |
                       PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
    const int fd = static_cast<int>(
        PerfEventOpen(&attr, /*pid=*/0, /*cpu=*/-1, leader_fd_, 0));
    if (fd < 0) {
      const int err = errno;
      if (leader_fd_ < 0) {
        return Status::FailedPrecondition("perf_event_open(" + event.name +
                                          "): " + OpenErrorReason(err));
      }
      // A sibling the PMU lacks (common for dTLB in VMs): drop the event,
      // keep the group.
      IAWJ_LOG(Warning) << "pmu: skipping event " << event.name << ": "
                        << OpenErrorReason(err);
      continue;
    }
    uint64_t id = 0;
    if (ioctl(fd, PERF_EVENT_IOC_ID, &id) != 0) {
      close(fd);
      if (leader_fd_ < 0) {
        return Status::FailedPrecondition("PERF_EVENT_IOC_ID(" + event.name +
                                          "): " + std::strerror(errno));
      }
      continue;
    }
    if (leader_fd_ < 0) leader_fd_ = fd;
    fds_.push_back(fd);
    open_names_.push_back(event.name);
    ids_.push_back(id);
    event_slots_.push_back(slot);
  }
  ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  if (ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
    const std::string reason = std::strerror(errno);
    Close();
    return Status::FailedPrecondition("PERF_EVENT_IOC_ENABLE: " + reason);
  }
  return Status::Ok();
}

Status PmuGroup::ReadCounters(uint64_t* out) const {
  for (int e = 0; e < kMaxEvents; ++e) out[e] = 0;
  if (leader_fd_ < 0) {
    return Status::FailedPrecondition("pmu group not open");
  }
  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running,
  // { value, id } per counter.
  struct {
    uint64_t nr;
    uint64_t time_enabled;
    uint64_t time_running;
    struct {
      uint64_t value;
      uint64_t id;
    } values[kMaxEvents];
  } buffer;
  const ssize_t want = static_cast<ssize_t>(
      3 * sizeof(uint64_t) + open_names_.size() * 2 * sizeof(uint64_t));
  const ssize_t got = read(leader_fd_, &buffer, sizeof(buffer));
  if (got < want) {
    return Status::FailedPrecondition(
        "pmu group read returned " + std::to_string(got) + " bytes, want " +
        std::to_string(want));
  }
  // Multiplex scaling: when more counters are requested than the PMU has,
  // the kernel time-slices them; value * enabled / running estimates the
  // full-run count.
  const double scale =
      buffer.time_running > 0
          ? static_cast<double>(buffer.time_enabled) /
                static_cast<double>(buffer.time_running)
          : 1.0;
  for (uint64_t i = 0; i < buffer.nr && i < uint64_t{kMaxEvents}; ++i) {
    for (size_t e = 0; e < ids_.size(); ++e) {
      if (ids_[e] == buffer.values[i].id) {
        out[event_slots_[e]] = static_cast<uint64_t>(
            static_cast<double>(buffer.values[i].value) * scale);
        break;
      }
    }
  }
  return Status::Ok();
}

void PmuGroup::Close() {
  for (int fd : fds_) close(fd);
  fds_.clear();
  open_names_.clear();
  ids_.clear();
  event_slots_.clear();
  leader_fd_ = -1;
}

bool Requested() {
  RequestedState& state = GetRequestedState();
  if (state.forced) return state.value;
  std::call_once(state.once, [&state] {
    if (state.forced) return;
    const char* env = std::getenv("IAWJ_PMU");
    state.value = env != nullptr && env[0] != '\0' &&
                  !(env[0] == '0' && env[1] == '\0');
  });
  return state.value;
}

void ForceRequested(bool requested) {
  RequestedState& state = GetRequestedState();
  state.value = requested;
  state.forced = true;
}

const Availability& Probe() {
  ProbeState* state = GetProbeState();
  std::call_once(state->once, [state] {
    if (const Status& extras = ExtrasStatus(); !extras.ok()) {
      state->availability.available = false;
      state->availability.reason =
          "pmu unavailable: " + std::string(extras.message());
      return;
    }
    PmuGroup group;
    if (const Status status = group.Open(); !status.ok()) {
      state->availability.available = false;
      state->availability.reason =
          "pmu unavailable: " + std::string(status.message());
      return;
    }
    uint64_t scratch[kMaxEvents];
    if (const Status status = group.ReadCounters(scratch); !status.ok()) {
      state->availability.available = false;
      state->availability.reason =
          "pmu unavailable: " + std::string(status.message());
      return;
    }
    state->availability.available = true;
  });
  return state->availability;
}

void ThreadPmu::Switch(int next_phase) {
  if (next_phase == current_phase) return;
  const uint64_t now = NowNs();
  if (now - last_sample_ns < kMinSampleNs) {
    // Below the sampling grain: stay attributed to the current phase (the
    // bounded-granularity contract; see the header comment). The eager
    // engine flaps phases every tuple — snapshotting each flap would cost
    // a read(2) per tuple.
    return;
  }
  uint64_t now_values[kMaxEvents];
  if (!group.ReadCounters(now_values).ok()) return;
  uint64_t delta[kMaxEvents];
  const int n = static_cast<int>(Events().size());  // slots, incl. skipped
  for (int e = 0; e < n; ++e) {
    // Clamp: multiplex scaling estimates can jitter a counter slightly
    // backwards between reads; deltas must stay non-negative.
    delta[e] = now_values[e] >= mark[e] ? now_values[e] - mark[e] : 0;
    mark[e] = now_values[e];
  }
  out->Add(current_phase, delta, n);
  current_phase = next_phase;
  last_sample_ns = now;
}

ScopedThreadPmu::ScopedThreadPmu(PmuProfile* out) {
  if (!Requested() || t_pmu != nullptr || out == nullptr) return;
  if (!Probe().available) return;
  if (!state_.group.Open().ok()) return;
  state_.out = out;
  state_.current_phase = static_cast<int>(Phase::kOther);
  uint64_t values[kMaxEvents];
  if (!state_.group.ReadCounters(values).ok()) {
    state_.group.Close();
    return;
  }
  for (int e = 0; e < kMaxEvents; ++e) state_.mark[e] = values[e];
  state_.last_sample_ns = NowNs();
  t_pmu = &state_;
  installed_ = true;
}

void ScopedThreadPmu::Finish() {
  if (!installed_) return;
  // Attribute the tail delta to whatever phase is current, bypassing the
  // sampling throttle so short runs still report counts.
  uint64_t values[kMaxEvents];
  if (state_.group.ReadCounters(values).ok()) {
    uint64_t delta[kMaxEvents];
    const int n = static_cast<int>(Events().size());
    for (int e = 0; e < n; ++e) {
      delta[e] = values[e] >= state_.mark[e] ? values[e] - state_.mark[e] : 0;
    }
    state_.out->Add(state_.current_phase, delta, n);
  }
  state_.group.Close();
  t_pmu = nullptr;
  installed_ = false;
}

Phase SwitchPhase(Phase next) {
  ThreadPmu* state = t_pmu;
  if (state == nullptr) return next;
  const Phase previous = static_cast<Phase>(state->current_phase);
  state->Switch(static_cast<int>(next));
  return previous;
}

void ResetForTesting() {
  GetRequestedState().forced = false;
  // The once_flags cannot be rearmed; replace the cached states wholesale.
  // (Leaks one small struct per reset — test-only.)
  GetProbeState() = new ProbeState;
  GetEventsState() = new EventsState;
}

}  // namespace iawj::pmu
