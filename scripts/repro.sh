#!/usr/bin/env bash
# Full reproduction driver: configure, build, test, and regenerate every
# table/figure, leaving CSVs + gnuplot scripts under results/.
#
# Usage:
#   scripts/repro.sh                 # scaled-down (laptop) reproduction
#   IAWJ_PAPER_SCALE=1 scripts/repro.sh   # paper-sized workloads
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

mkdir -p results
export IAWJ_CSV_DIR="$PWD/results"
{
  for b in build/bench/*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    "$b"
  done
} 2>&1 | tee bench_output.txt

echo
echo "Done. Per-figure CSVs and gnuplot scripts: results/"
echo "Console tables: bench_output.txt; test log: test_output.txt"
