#!/usr/bin/env python3
"""Aggregate an IAWJ_METRICS_DIR of run records into a perf trajectory report.

Reads every *.json run record in the given directory (the files that
JoinRunner/benches emit when IAWJ_METRICS_DIR is set), groups them by
(bench, algorithm), and writes a markdown report plus a CSV with one row
per group:

  runs, ok runs, mean throughput, mean work-ns-per-input, and — when the
  records carry measured PMU counters (record_version >= 5 with
  pmu.available) — cycles per input tuple, IPC, and L1D/LLC/dTLB misses
  per input, plus the per-phase cycle split.

Intended use: run the bench suite with IAWJ_METRICS_DIR set on two
revisions, run this script on each directory, and diff the CSVs — the
counters catch regressions that wall-clock noise hides. Stdlib only.

Usage:
  scripts/perf_report.py <metrics-dir> [--out <dir>] [--format md|csv|both]

Exit codes: 0 ok, 1 bad arguments or unreadable directory, 2 no records.
"""

import argparse
import json
import os
import sys

# Events reported as per-input columns when PMU data is present, in column
# order. Missing events (skipped siblings, older records) print empty cells.
PMU_COLUMNS = [
    ("cycles", "cyc/in"),
    ("instructions", "ins/in"),
    ("l1d_misses", "L1D/in"),
    ("llc_misses", "LLC/in"),
    ("dtlb_misses", "dTLB/in"),
    ("branch_misses", "BR/in"),
]


def load_records(directory):
    records = []
    try:
        names = sorted(os.listdir(directory))
    except OSError as err:
        print(f"error: cannot read {directory}: {err}", file=sys.stderr)
        sys.exit(1)
    for name in names:
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        try:
            with open(path, encoding="utf-8") as f:
                record = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"warning: skipping {path}: {err}", file=sys.stderr)
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


class Group:
    """Aggregate of all runs for one (bench, algorithm) pair."""

    def __init__(self, bench, algorithm):
        self.bench = bench
        self.algorithm = algorithm
        self.runs = 0
        self.ok_runs = 0
        self.inputs = 0
        self.throughputs = []
        self.work_ns = []
        # PMU accumulation: totals per event and per (phase, event), summed
        # over runs that measured; pmu_inputs is their input sum so
        # per-input values weight runs by size.
        self.pmu_runs = 0
        self.pmu_inputs = 0
        self.pmu_totals = {}
        self.pmu_phases = {}

    def add(self, record):
        self.runs += 1
        if record.get("status") == "ok":
            self.ok_runs += 1
        inputs = int(record.get("inputs", 0))
        self.inputs += inputs
        tput = record.get("throughput_per_ms")
        if isinstance(tput, (int, float)) and tput > 0:
            self.throughputs.append(float(tput))
        work = record.get("work_ns_per_input")
        if isinstance(work, (int, float)) and work > 0:
            self.work_ns.append(float(work))
        pmu = record.get("pmu")
        if not isinstance(pmu, dict) or not pmu.get("available"):
            return
        totals = pmu.get("totals", {})
        if not isinstance(totals, dict) or inputs <= 0:
            return
        self.pmu_runs += 1
        self.pmu_inputs += inputs
        for event, value in totals.items():
            if isinstance(value, (int, float)):
                self.pmu_totals[event] = self.pmu_totals.get(event, 0) + value
        phases = pmu.get("phases", {})
        if isinstance(phases, dict):
            for phase, deltas in phases.items():
                if not isinstance(deltas, dict):
                    continue
                row = self.pmu_phases.setdefault(phase, {})
                for event, value in deltas.items():
                    if isinstance(value, (int, float)):
                        row[event] = row.get(event, 0) + value

    def per_input(self, event):
        if self.pmu_inputs <= 0 or event not in self.pmu_totals:
            return None
        return self.pmu_totals[event] / self.pmu_inputs

    def ipc(self):
        cycles = self.pmu_totals.get("cycles", 0)
        instructions = self.pmu_totals.get("instructions", 0)
        return instructions / cycles if cycles > 0 else None

    def phase_cycle_shares(self):
        """(phase, share) pairs for phases that burned cycles, largest first."""
        total = self.pmu_totals.get("cycles", 0)
        if total <= 0:
            return []
        shares = []
        for phase, deltas in self.pmu_phases.items():
            cycles = deltas.get("cycles", 0)
            if cycles > 0:
                shares.append((phase, cycles / total))
        shares.sort(key=lambda item: -item[1])
        return shares

    @staticmethod
    def mean(values):
        return sum(values) / len(values) if values else None


def fmt(value, digits=2):
    return "" if value is None else f"{value:.{digits}f}"


def write_csv(groups, path):
    header = ["bench", "algo", "runs", "ok_runs", "inputs",
              "mean_tput_per_ms", "mean_work_ns_per_input",
              "pmu_runs", "ipc"]
    header += [f"pmu_{event}_per_input" for event, _ in PMU_COLUMNS]
    lines = [",".join(header)]
    for g in groups:
        row = [g.bench, g.algorithm, str(g.runs), str(g.ok_runs),
               str(g.inputs), fmt(Group.mean(g.throughputs), 1),
               fmt(Group.mean(g.work_ns), 1), str(g.pmu_runs),
               fmt(g.ipc())]
        row += [fmt(g.per_input(event), 4) for event, _ in PMU_COLUMNS]
        lines.append(",".join(row))
    with open(path, "w", encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")


def write_markdown(groups, path, directory):
    out = [f"# Perf report: `{directory}`", ""]
    measured = sum(1 for g in groups if g.pmu_runs > 0)
    out.append(f"{sum(g.runs for g in groups)} run(s) in "
               f"{len(groups)} (bench, algorithm) group(s); "
               f"{measured} group(s) carry measured PMU counters.")
    out.append("")
    header = ["bench", "algo", "runs", "tput/ms", "work ns/in", "IPC"]
    header += [label for _, label in PMU_COLUMNS]
    out.append("| " + " | ".join(header) + " |")
    out.append("|" + "---|" * len(header))
    for g in groups:
        row = [g.bench, g.algorithm, f"{g.ok_runs}/{g.runs}",
               fmt(Group.mean(g.throughputs), 1),
               fmt(Group.mean(g.work_ns), 1), fmt(g.ipc())]
        row += [fmt(g.per_input(event), 3) for event, _ in PMU_COLUMNS]
        out.append("| " + " | ".join(row) + " |")
    out.append("")
    phased = [g for g in groups if g.phase_cycle_shares()]
    if phased:
        out.append("## Cycle split by phase (measured groups)")
        out.append("")
        for g in phased:
            split = ", ".join(f"{phase} {share:.0%}"
                              for phase, share in g.phase_cycle_shares())
            out.append(f"- **{g.bench} / {g.algorithm}**: {split}")
        out.append("")
    with open(path, "w", encoding="utf-8") as f:
        f.write("\n".join(out) + "\n")


def main():
    parser = argparse.ArgumentParser(
        description="Aggregate IAWJ run records into a perf report.")
    parser.add_argument("metrics_dir", help="IAWJ_METRICS_DIR directory")
    parser.add_argument("--out", default=None,
                        help="output directory (default: metrics_dir)")
    parser.add_argument("--format", choices=["md", "csv", "both"],
                        default="both")
    args = parser.parse_args()

    records = load_records(args.metrics_dir)
    if not records:
        print(f"error: no run records in {args.metrics_dir}",
              file=sys.stderr)
        return 2

    groups = {}
    for record in records:
        key = (str(record.get("bench", "?")),
               str(record.get("algorithm", "?")))
        groups.setdefault(key, Group(*key)).add(record)
    ordered = [groups[key] for key in sorted(groups)]

    out_dir = args.out or args.metrics_dir
    os.makedirs(out_dir, exist_ok=True)
    written = []
    if args.format in ("md", "both"):
        path = os.path.join(out_dir, "perf_report.md")
        write_markdown(ordered, path, args.metrics_dir)
        written.append(path)
    if args.format in ("csv", "both"):
        path = os.path.join(out_dir, "perf_report.csv")
        write_csv(ordered, path)
        written.append(path)
    measured = sum(1 for g in ordered if g.pmu_runs > 0)
    print(f"perf_report: {len(records)} record(s), {len(ordered)} group(s), "
          f"{measured} with PMU data -> {', '.join(written)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
