#!/usr/bin/env python3
"""Bench-regression gate for the cache-conscious kernels.

Compares a fresh `kernels_microbench --json` run against the checked-in
BENCH_baseline.json and fails when a kernel regressed beyond tolerance.

Two comparison modes:

  ratio (default, used in CI)
      Compares the swwc-vs-scalar / batched-vs-scalar SPEEDUPS of the fresh
      run against the baseline's. Ratios divide out the machine: both sides
      of each ratio come from the same run on the same hardware, so the gate
      is meaningful on CI runners that are slower (or faster) than the
      machine that produced the baseline.

  absolute
      Compares raw items/sec per kernel. Only meaningful on the machine the
      baseline was recorded on; use locally when hunting a regression.

Escape hatches for noisy runners:
  IAWJ_BENCH_GATE=off          skip the gate entirely (exit 0)
  IAWJ_BENCH_TOLERANCE=<frac>  override the regression tolerance (e.g. 0.25)

A third, counter-based mode gates on run records instead of wall-clock:

  --records <dir> --records-baseline <dir>
      Compares cycles-per-input-tuple per (bench, algorithm) between two
      IAWJ_METRICS_DIR directories of run records. Only records with
      measured PMU counters (record_version >= 5, pmu.available) count;
      when either side has none the gate SKIPS silently (exit 0) — hosts
      that refuse perf_event_open must not fail CI. Cycles per tuple are
      far less noisy than wall-clock on shared runners, so this catches
      the regressions the ratio mode's tolerance has to forgive.

Usage:
  bench_gate.py --bench <path-to-kernels_microbench> [--mode ratio|absolute]
                [--baseline BENCH_baseline.json] [--tolerance 0.15]
  bench_gate.py --current run.json --baseline BENCH_baseline.json
  bench_gate.py --bench <...> --update    # rebaseline: overwrite baseline
  bench_gate.py --records <metrics-dir> --records-baseline <metrics-dir>
"""

import argparse
import json
import os
import subprocess
import sys

DEFAULT_TOLERANCE = 0.15
SCHEMA = "iawj-kernels-bench-v2"

# Absolute speedup floors from the ISSUE's acceptance bar, enforced in ratio
# mode on top of the baseline comparison (no tolerance: these are the
# minimum ratios at which each kernel earns its keep). The vector-probe
# floors are skipped — loudly — when the run reports the host cannot run
# the vector path (no AVX2, or $IAWJ_SIMD_PROBE=0), since the "simd" side
# is then the scalar fallback measuring itself.
MIN_SPEEDUPS = {
    "probe/linear/n=64k": 1.5,   # AVX2 vertical probe vs scalar walk
    "probe/linear/n=1m": 1.5,
    "build/shared/n=64k": 1.0,   # lock-free CAS build vs latched build
}
SIMD_FLOORS = ("probe/linear/n=64k", "probe/linear/n=1m")


def run_bench(bench_path):
    proc = subprocess.run(
        [bench_path, "--json"], capture_output=True, text=True, check=True
    )
    return json.loads(proc.stdout)


def load_json(path):
    with open(path) as f:
        return json.load(f)


def check_schema(doc, origin):
    if doc.get("schema") != SCHEMA:
        sys.exit(f"bench_gate: {origin} has schema {doc.get('schema')!r}, "
                 f"expected {SCHEMA!r}")


def compare(baseline, current, mode, tolerance):
    """Returns a list of failure strings; empty means the gate passes."""
    failures = []
    if mode == "ratio":
        base, cur = baseline.get("speedups", {}), current.get("speedups", {})
        kind = "speedup"
    else:
        base = {r["name"]: r["items_per_sec"] for r in baseline["results"]}
        cur = {r["name"]: r["items_per_sec"] for r in current["results"]}
        kind = "items/sec"

    for name, base_val in sorted(base.items()):
        cur_val = cur.get(name)
        if cur_val is None:
            failures.append(f"{name}: missing from current run")
            continue
        floor = base_val * (1.0 - tolerance)
        status = "ok" if cur_val >= floor else "REGRESSED"
        print(f"  {name:<28} baseline {kind} {base_val:>12.3f}  "
              f"current {cur_val:>12.3f}  floor {floor:>12.3f}  {status}")
        if cur_val < floor:
            failures.append(
                f"{name}: {kind} {cur_val:.3f} < floor {floor:.3f} "
                f"(baseline {base_val:.3f}, tolerance {tolerance:.0%})"
            )

    if mode == "ratio":
        simd_ok = current.get("simd_probe_supported", True)
        for name, min_speedup in sorted(MIN_SPEEDUPS.items()):
            if name in SIMD_FLOORS and not simd_ok:
                print(f"  {name:<28} absolute floor {min_speedup:.2f}x "
                      "skipped: host cannot run the vector probe")
                continue
            cur_val = cur.get(name)
            if cur_val is None:
                failures.append(f"{name}: missing (absolute floor "
                                f"{min_speedup:.2f}x not checked)")
                continue
            status = "ok" if cur_val >= min_speedup else "BELOW FLOOR"
            print(f"  {name:<28} absolute floor {min_speedup:>12.3f}  "
                  f"current {cur_val:>12.3f}  {status}")
            if cur_val < min_speedup:
                failures.append(
                    f"{name}: speedup {cur_val:.3f} < absolute floor "
                    f"{min_speedup:.2f}x (the kernel no longer earns its "
                    "keep)")
    return failures


def cycles_per_input_by_group(directory):
    """(bench, algo) -> cycles per input, from PMU-measured run records.

    Sums cycles and inputs across records per group so several small runs
    weigh like one big one. Groups without measured PMU data are absent.
    """
    groups = {}
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return {}
    for name in names:
        if not name.endswith(".json"):
            continue
        try:
            with open(os.path.join(directory, name)) as f:
                record = json.load(f)
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(record, dict):
            continue
        pmu = record.get("pmu")
        inputs = record.get("inputs", 0)
        if (not isinstance(pmu, dict) or not pmu.get("available")
                or not isinstance(inputs, (int, float)) or inputs <= 0):
            continue
        cycles = pmu.get("totals", {}).get("cycles")
        if not isinstance(cycles, (int, float)) or cycles <= 0:
            continue
        key = (str(record.get("bench", "?")),
               str(record.get("algorithm", "?")))
        acc = groups.setdefault(key, [0, 0])
        acc[0] += cycles
        acc[1] += inputs
    return {key: cycles / inputs
            for key, (cycles, inputs) in groups.items() if inputs > 0}


def gate_records(records_dir, baseline_dir, tolerance):
    """Counter gate: fails when cycles/tuple grew beyond tolerance.

    Returns an exit code. Skips (0) when either directory lacks measured
    PMU records — an unprivileged runner is not a regression.
    """
    current = cycles_per_input_by_group(records_dir)
    baseline = cycles_per_input_by_group(baseline_dir)
    if not current or not baseline:
        # Explicit, greppable skip: a CI log must never make a no-data run
        # look like a gated-and-passed run.
        side = "current" if not current else "baseline"
        side_dir = records_dir if not current else baseline_dir
        print(f"bench_gate: skipped: no measured PMU records on the {side} "
              f"side ({side_dir}); counter gate did not run (exit 0)")
        return 0
    shared = sorted(set(current) & set(baseline))
    if not shared:
        print("bench_gate: skipped: no measured PMU overlap between "
              f"{records_dir} and {baseline_dir} "
              "(no shared (bench, algorithm) group); counter gate did not "
              "run (exit 0)")
        return 0
    print(f"bench_gate: mode=records tolerance={tolerance:.0%} "
          f"baseline={baseline_dir}")
    failures = []
    for key in shared:
        base_val, cur_val = baseline[key], current[key]
        # Cycles per tuple: LOWER is better, so the ceiling grows with
        # tolerance (the wall-clock modes gate a floor instead).
        ceiling = base_val * (1.0 + tolerance)
        status = "ok" if cur_val <= ceiling else "REGRESSED"
        name = "/".join(key)
        print(f"  {name:<28} baseline cyc/in {base_val:>12.1f}  "
              f"current {cur_val:>12.1f}  ceiling {ceiling:>12.1f}  {status}")
        if cur_val > ceiling:
            failures.append(
                f"{name}: cycles/tuple {cur_val:.1f} > ceiling {ceiling:.1f} "
                f"(baseline {base_val:.1f}, tolerance {tolerance:.0%})")
    if failures:
        print("\nbench_gate: FAILED")
        for f in failures:
            print(f"  {f}")
        return 1
    print("bench_gate: ok")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", help="path to kernels_microbench binary")
    parser.add_argument("--current", help="pre-recorded --json output to use "
                        "instead of running --bench")
    parser.add_argument("--records", help="IAWJ_METRICS_DIR of run records "
                        "to gate on cycles-per-tuple")
    parser.add_argument("--records-baseline",
                        help="baseline IAWJ_METRICS_DIR for --records")
    parser.add_argument("--baseline", default=os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_baseline.json"))
    parser.add_argument("--mode", choices=["ratio", "absolute"],
                        default="ratio")
    parser.add_argument("--tolerance", type=float, default=None)
    parser.add_argument("--update", action="store_true",
                        help="overwrite the baseline with this run")
    args = parser.parse_args()

    if os.environ.get("IAWJ_BENCH_GATE", "").lower() in ("off", "0", "false"):
        print("bench_gate: disabled via IAWJ_BENCH_GATE, skipping")
        return 0

    tolerance = args.tolerance
    if tolerance is None:
        tolerance = float(os.environ.get("IAWJ_BENCH_TOLERANCE",
                                         DEFAULT_TOLERANCE))

    if args.records:
        if not args.records_baseline:
            parser.error("--records needs --records-baseline")
        return gate_records(args.records, args.records_baseline, tolerance)

    if args.current:
        current = load_json(args.current)
    elif args.bench:
        current = run_bench(args.bench)
    else:
        parser.error("need --bench or --current")
    check_schema(current, "current run")

    if args.update:
        with open(args.baseline, "w") as f:
            json.dump(current, f, indent=2)
            f.write("\n")
        print(f"bench_gate: baseline updated -> {args.baseline}")
        return 0

    baseline = load_json(args.baseline)
    check_schema(baseline, args.baseline)

    print(f"bench_gate: mode={args.mode} tolerance={tolerance:.0%} "
          f"baseline={args.baseline}")
    failures = compare(baseline, current, args.mode, tolerance)
    if failures:
        print("\nbench_gate: FAILED")
        for f in failures:
            print(f"  {f}")
        print("\nIf this runner is known-noisy, rerun or set "
              "IAWJ_BENCH_TOLERANCE / IAWJ_BENCH_GATE=off.")
        return 1
    print("bench_gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
