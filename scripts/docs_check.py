#!/usr/bin/env python3
"""Docs-drift gate: docs/MANUAL.md must track the code's runtime surface.

Checks, each fatal:
  1. Every IAWJ_* environment variable read anywhere in src/, tools/,
     bench/, examples/, or scripts/ is mentioned in MANUAL.md.
  2. Every IAWJ_* token in MANUAL.md corresponds to a real read in the
     code — no phantom knobs surviving a rename or removal.
  3. Every flag in the tools/cli_flags.h and tools/serve_flags.h tables
     (the single sources of truth --help prints and iawj_cli / iawj_serve
     parse) appears as --<name> in MANUAL.md.
  4. Every --flag row of MANUAL.md's flag tables exists in one of those
     two tables.
  5. All eleven exit codes (0..10) have a row in MANUAL.md's table.

Run from anywhere inside the repo:  python3 scripts/docs_check.py
"""

import os
import re
import sys

ENV_RE = re.compile(r"IAWJ_[A-Z][A-Z0-9_]*")
# In source files an env-var name appears as a quoted string (C++ getenv,
# Python os.environ) or $-reference (shell); bare IAWJ_* identifiers are
# include guards and macros, not knobs.
SOURCE_ENV_RE = re.compile(r"[\"$]\{?(IAWJ_[A-Z][A-Z0-9_]*)[\"}]?")
# A flag row in MANUAL.md: a markdown table line whose first cell starts
# with `--name`. Prose mentions of flags (e.g. --no-simd) are not checked.
MANUAL_FLAG_ROW_RE = re.compile(r"^\|\s*`--([a-z][a-z0-9-]*)")
# An entry in the cli_flags.h table: {"name", ...}.
TABLE_FLAG_RE = re.compile(r"\{\"([a-z][a-z0-9-]*)\",")
SOURCE_DIRS = ("src", "tools", "bench", "examples", "scripts")
SOURCE_EXTS = (".h", ".cc", ".py", ".sh")


def repo_root():
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(here)


def read(path):
    with open(path, "r", encoding="utf-8") as f:
        return f.read()


def env_vars_in_sources(root):
    """IAWJ_* names read by the code (quoted in C++/Python, bare in sh)."""
    found = set()
    for d in SOURCE_DIRS:
        for dirpath, _, files in os.walk(os.path.join(root, d)):
            for name in files:
                if not name.endswith(SOURCE_EXTS):
                    continue
                path = os.path.join(dirpath, name)
                if os.path.samefile(path, os.path.abspath(__file__)):
                    continue  # this checker's own docstring/regexes
                found.update(SOURCE_ENV_RE.findall(read(path)))
    return found


def fail(errors):
    for e in errors:
        print(f"docs_check: {e}", file=sys.stderr)
    print(
        f"docs_check: FAILED with {len(errors)} error(s) — update "
        "docs/MANUAL.md (and tools/cli_flags.h) to match the code.",
        file=sys.stderr,
    )
    return 1


def main():
    root = repo_root()
    manual_path = os.path.join(root, "docs", "MANUAL.md")
    errors = []

    if not os.path.isfile(manual_path):
        return fail(["docs/MANUAL.md does not exist"])
    manual = read(manual_path)

    # 1 & 2: environment variables, both directions.
    in_code = env_vars_in_sources(root)
    in_manual = set(ENV_RE.findall(manual))
    for var in sorted(in_code - in_manual):
        errors.append(f"{var} is read by the code but missing from MANUAL.md")
    for var in sorted(in_manual - in_code):
        errors.append(f"{var} is documented in MANUAL.md but nothing reads it")

    # 3 & 4: flags vs the cli_flags.h and serve_flags.h tables, both
    # directions. Each binary's table must be fully documented; a MANUAL
    # row must trace back to at least one table.
    tables = {}
    for header in ("cli_flags.h", "serve_flags.h"):
        flags = set(TABLE_FLAG_RE.findall(read(os.path.join(root, "tools", header))))
        if not flags:
            errors.append(f"no flag entries parsed from tools/{header}")
        tables[header] = flags
    manual_flags = set()
    for line in manual.splitlines():
        m = MANUAL_FLAG_ROW_RE.match(line.strip())
        if m:
            manual_flags.add(m.group(1))
    for header, flags in tables.items():
        for flag in sorted(flags - manual_flags):
            errors.append(
                f"--{flag} is in the tools/{header} table but has no row "
                "in MANUAL.md"
            )
    all_table_flags = set().union(*tables.values())
    for flag in sorted(manual_flags - all_table_flags):
        errors.append(
            f"--{flag} has a MANUAL.md row but is in neither the "
            "cli_flags.h nor the serve_flags.h table"
        )

    # 5: exit codes 0..10 each need a table row.
    for code in range(11):
        if not re.search(rf"^\|\s*{code}\s*\|", manual, re.MULTILINE):
            errors.append(f"exit code {code} has no row in MANUAL.md")

    if errors:
        return fail(errors)
    print(
        f"docs_check: ok ({len(in_code)} env vars, "
        f"{len(tables['cli_flags.h'])} iawj_cli flags, "
        f"{len(tables['serve_flags.h'])} iawj_serve flags, "
        "11 exit codes documented)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
